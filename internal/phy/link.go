package phy

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"mosaic/internal/coding/linecode"
)

// Config describes a Mosaic PHY instance.
type Config struct {
	Lanes   int // active logical lanes (e.g. 100 for the prototype)
	Spares  int // spare physical channels
	FEC     FEC // per-channel FEC (NoFEC, HammingFEC, RS-lite, KP4)
	UnitLen int // stripe unit / channel-frame payload, bytes; multiple of 9
	// PerChannelBitRate is the per-channel line rate in bit/s (2e9 for the
	// paper's operating point); used for throughput/latency accounting.
	PerChannelBitRate float64
	Seed              int64
	// Workers caps how many pool workers the per-lane pipeline stage may
	// use: 0 means runtime.GOMAXPROCS, 1 runs the lanes inline (serial).
	// Results are bit-identical for any value — see pool.go.
	Workers int
}

// DefaultConfig returns the paper's prototype configuration: 100 channels
// at 2 Gbps with 4 spares and the light RS FEC.
func DefaultConfig() Config {
	return Config{
		Lanes:             100,
		Spares:            4,
		FEC:               NewRSLite(),
		UnitLen:           243, // 27 64b/66b blocks; body (252B) fills RS-lite blocks efficiently
		PerChannelBitRate: 2e9,
		Seed:              1,
	}
}

// ConventionalConfig returns the narrow-and-fast architecture expressed in
// the same framework: 8 lanes at 106.25 Gbps with KP4 FEC and no spares —
// an 800G DR8/AOC-style link. Comparing it against DefaultConfig isolates
// the architectural difference (width and sparing) from implementation
// details, since both run the identical pipeline.
func ConventionalConfig() Config {
	return Config{
		Lanes:             8,
		Spares:            0,
		FEC:               NewRSKP4(),
		UnitLen:           243,
		PerChannelBitRate: 106.25e9,
		Seed:              1,
	}
}

// scramblerSeed is the spec constant both ends use; the descrambler would
// self-synchronize from any state, but a fixed seed makes the first 58 bits
// exact too.
const scramblerSeed = 0x2a5f3c19d4b7e

// Link is a bit-true Mosaic PHY endpoint pair connected by simulated noisy
// channels: Exchange pushes frames through TX logic, the per-channel BSCs,
// and RX logic. It is the executable equivalent of the paper's 100-channel
// prototype.
type Link struct {
	cfg      Config
	framer   *Framer
	mapper   *Mapper
	monitor  *Monitor
	channels []BSC // indexed by physical channel; one contiguous slab

	// Reusable pipeline state: the scrambler pair is Reset to the spec
	// seed on every Exchange, and scratch holds the stage buffers.
	scrambler   *linecode.Scrambler
	descrambler *linecode.Descrambler
	scratch     linkScratch
	probe       probeScratch
	dispatch    *laneDispatcher

	superframes uint64 // completed Exchange rounds
}

// New builds a link. The channels start error-free; use SetChannelBER (or
// the core package, which derives BERs from the analog models).
func New(cfg Config) (*Link, error) {
	if cfg.Lanes <= 0 {
		return nil, errors.New("phy: need at least one lane")
	}
	if cfg.FEC == nil {
		cfg.FEC = NoFEC{}
	}
	if cfg.UnitLen <= 0 {
		cfg.UnitLen = 243
	}
	if cfg.UnitLen%9 != 0 {
		return nil, fmt.Errorf("phy: UnitLen %d must be a multiple of 9 (one 64b/66b block)", cfg.UnitLen)
	}
	mapper, err := NewMapper(cfg.Lanes, cfg.Spares)
	if err != nil {
		return nil, err
	}
	l := &Link{
		cfg:         cfg,
		framer:      NewFramer(cfg.FEC, cfg.UnitLen),
		mapper:      mapper,
		monitor:     NewMonitor(cfg.Lanes+cfg.Spares, DefaultMonitorConfig()),
		scrambler:   linecode.NewScrambler(scramblerSeed),
		descrambler: linecode.NewDescrambler(scramblerSeed),
	}
	l.channels = make([]BSC, cfg.Lanes+cfg.Spares)
	for i := range l.channels {
		l.channels[i].init(0, cfg.Seed+int64(i)*7919)
	}
	l.dispatch = newLaneDispatcher(l.stageLaneIdx)
	return l, nil
}

// Config returns the link configuration.
func (l *Link) Config() Config { return l.cfg }

// Mapper exposes the lane mapper (read-mostly; failures should go through
// FailChannel).
func (l *Link) Mapper() *Mapper { return l.mapper }

// Monitor exposes channel health.
func (l *Link) Monitor() *Monitor { return l.monitor }

// SetChannelBER sets the bit error rate of a physical channel.
func (l *Link) SetChannelBER(physical int, ber float64) {
	if physical >= 0 && physical < len(l.channels) {
		c := &l.channels[physical]
		if ber < 0 {
			ber = 0
		}
		c.BER = ber
	}
}

// ChannelBER returns the configured bit error rate of a physical channel
// (0 for out-of-range channels). Fault-injection schedules read it to
// ramp or temporarily override a channel's noise level.
func (l *Link) ChannelBER(physical int) float64 {
	if physical >= 0 && physical < len(l.channels) {
		return l.channels[physical].BER
	}
	return 0
}

// ChannelDead reports whether a physical channel's transmitter has been
// killed via KillChannel.
func (l *Link) ChannelDead(physical int) bool {
	if physical >= 0 && physical < len(l.channels) {
		return l.channels[physical].Dead
	}
	return false
}

// Superframes returns how many Exchange rounds the link has completed.
// Fault schedules and maintenance cadences key off this counter: remaps
// and injected events take effect at superframe boundaries, like the
// hardware swapping lanes between alignment periods.
func (l *Link) Superframes() uint64 { return l.superframes }

// SetChannelSkew sets the skew (random prefix bytes) of a physical channel.
func (l *Link) SetChannelSkew(physical, bytes int) {
	if physical >= 0 && physical < len(l.channels) && bytes >= 0 {
		l.channels[physical].SkewBytes = bytes
	}
}

// KillChannel makes a physical channel emit noise (transmitter death).
// Traffic impact persists until FailChannel respares it.
func (l *Link) KillChannel(physical int) {
	if physical >= 0 && physical < len(l.channels) {
		l.channels[physical].Dead = true
	}
}

// FailChannel marks a channel failed in the monitor and remaps its lane to
// a spare (or degrades). Returns the remap event.
func (l *Link) FailChannel(physical int) RemapEvent {
	l.monitor.MarkFailed(physical)
	return l.mapper.Fail(physical)
}

// AggregateRate returns the current payload-agnostic aggregate line rate:
// lanes × per-channel rate.
func (l *Link) AggregateRate() float64 {
	return float64(l.mapper.NumLanes()) * l.cfg.PerChannelBitRate
}

// GoodputFraction returns payload bits / wire bits: the combined framing,
// FEC, and block-coding efficiency of the pipeline.
func (l *Link) GoodputFraction() float64 {
	// 64b/66b-as-bytes: 8 payload bytes per 9 stream bytes.
	blockEff := 8.0 / 9.0
	frameEff := float64(l.framer.PayloadLen()) / float64(l.framer.WireLen())
	return blockEff * frameEff
}

// ExchangeStats aggregates one Exchange.
type ExchangeStats struct {
	FramesIn        int
	FramesDelivered int
	FramesLost      int // missing entirely
	FramesCorrupted int // delivered region failed FCS
	UnitsTotal      int
	UnitsLost       int
	Corrections     int
	WireBytes       int
	PayloadBytes    int
	PerChannel      map[int]DecodeStats // by physical channel
}

// ExchangeBuf is a caller-owned arena for ExchangeInto: the delivered
// frames, their backing payload bytes, and the per-channel stats map all
// live here and are recycled on every call. One ExchangeBuf serves one
// ExchangeInto call at a time; its contents are valid until the next call
// that reuses it.
type ExchangeBuf struct {
	frames  [][]byte
	payload []byte
	perCh   map[int]DecodeStats
	emit    func(frame []byte)
}

// Exchange sends user frames through the full TX → channels → RX pipeline
// and returns the frames the far end recovered plus statistics.
// Frames must be at least 3 bytes (they gain a 4-byte FCS and must fill
// the 7-byte start block).
//
// The pipeline is staged (see pipeline.go); all buffers are reused across
// calls and the per-lane stage runs on the persistent worker pool, so the
// steady state allocates only the returned frames and stats map. Callers
// that consume the delivered frames before their next call should use
// ExchangeInto, which recycles those too and allocates nothing at all.
func (l *Link) Exchange(frames [][]byte) ([][]byte, ExchangeStats, error) {
	var st ExchangeStats
	st.PerChannel = make(map[int]DecodeStats)
	var out [][]byte
	err := l.exchange(frames, &st, func(frame []byte) {
		out = append(out, append([]byte(nil), frame...))
	})
	if err != nil {
		return nil, st, err
	}
	return out, st, nil
}

// ExchangeInto is Exchange with the output arena supplied by the caller:
// delivered frames are sub-slices of buf's payload slab and stay valid
// only until buf's next use. After warm-up (buffers grown to the traffic
// high-water mark) a round trip performs zero heap allocations.
func (l *Link) ExchangeInto(buf *ExchangeBuf, frames [][]byte) ([][]byte, ExchangeStats, error) {
	var st ExchangeStats
	if buf.perCh == nil {
		buf.perCh = make(map[int]DecodeStats)
	}
	clear(buf.perCh)
	st.PerChannel = buf.perCh
	buf.frames = buf.frames[:0]
	buf.payload = buf.payload[:0]
	if buf.emit == nil {
		buf.emit = func(frame []byte) {
			start := len(buf.payload)
			buf.payload = append(buf.payload, frame...)
			end := len(buf.payload)
			// Three-index slice: an append through a delivered frame can
			// never scribble over the next one.
			buf.frames = append(buf.frames, buf.payload[start:end:end])
		}
	}
	err := l.exchange(frames, &st, buf.emit)
	if err != nil {
		return nil, st, err
	}
	return buf.frames, st, nil
}

// exchange is the shared pipeline core: emit receives each delivered
// frame as a slice into reused scratch, valid only for the duration of
// the callback.
func (l *Link) exchange(frames [][]byte, st *ExchangeStats, emit func(frame []byte)) error {
	st.FramesIn = len(frames)

	// --- TX: frames -> blocks -> byte stream ---
	stream, err := l.stageEncode(frames, st)
	if err != nil {
		return err
	}

	// --- Scramble ---
	l.scrambler.Reset(scramblerSeed)
	l.scrambler.Scramble(stream)

	// --- Stripe across active lanes + per-channel transmit/decode ---
	lanes := l.mapper.NumLanes()
	if lanes == 0 {
		return errors.New("phy: link is down (no active lanes)")
	}
	// stageEncode pads to whole units, so the stream stripes exactly.
	totalUnits := len(stream) / l.cfg.UnitLen
	st.UnitsTotal = totalUnits
	maxUnits := laneUnits(totalUnits, lanes, 0)
	states := l.scratch.prepareLanes(lanes,
		maxUnits*l.framer.WireLen(), maxUnits, l.framer.bodyLen)
	rxStream := l.scratch.rxStreamBuf(len(stream))
	sc := &l.scratch
	sc.curLanes, sc.curUnits = lanes, totalUnits
	sc.curTx, sc.curRx = stream, rxStream
	l.dispatch.dispatch(lanes, l.cfg.Workers)
	sc.curTx, sc.curRx = nil, nil

	// --- Destripe: fold lane results serially, in lane order ---
	l.stageFold(states, st)

	// --- Descramble & parse blocks back into frames ---
	l.descrambler.Reset(scramblerSeed)
	l.descrambler.Descramble(rxStream)
	parseFrames(rxStream, st, &l.scratch.parse, emit)
	st.FramesLost = st.FramesIn - st.FramesDelivered - st.FramesCorrupted
	if st.FramesLost < 0 {
		st.FramesLost = 0
	}
	l.superframes++
	return nil
}

// parseFrames walks the descrambled 9-byte block stream, reassembling
// FCS-verified frames and resynchronizing after damage. scratch is the
// reusable frame-in-progress buffer; every verified frame is handed to
// emit as a slice into that buffer (copy it out to retain it) and counted
// in st.FramesDelivered.
func parseFrames(stream []byte, st *ExchangeStats, scratch *[]byte, emit func(frame []byte)) {
	cur := (*scratch)[:0]
	inFrame := false
	for off := 0; off+9 <= len(stream); off += 9 {
		sync := stream[off]
		var payload [8]byte
		copy(payload[:], stream[off+1:off+9])
		blk, err := linecode.DecodeBlock(sync, payload)
		if err != nil {
			// Corrupted block: any frame in progress is damaged.
			if inFrame {
				st.FramesCorrupted++
				inFrame = false
				cur = cur[:0]
			}
			continue
		}
		switch blk.Kind {
		case linecode.KindStart:
			if inFrame {
				st.FramesCorrupted++
			}
			cur = append(cur[:0], blk.Data[:7]...)
			inFrame = true
		case linecode.KindData:
			if inFrame {
				cur = append(cur, blk.Data[:]...)
			}
		case linecode.KindTerm:
			if !inFrame {
				continue
			}
			cur = append(cur, blk.Data[:blk.TermLen]...)
			inFrame = false
			if len(cur) < 4 {
				st.FramesCorrupted++
				cur = cur[:0]
				continue
			}
			body := cur[:len(cur)-4]
			want := binary.BigEndian.Uint32(cur[len(cur)-4:])
			if crc32.ChecksumIEEE(body) == want {
				emit(body)
				st.FramesDelivered++
			} else {
				st.FramesCorrupted++
			}
			cur = cur[:0]
		case linecode.KindIdle:
			if inFrame {
				// Idle inside a frame means we lost the terminate.
				st.FramesCorrupted++
				inFrame = false
				cur = cur[:0]
			}
		}
	}
	if inFrame {
		st.FramesCorrupted++
	}
	*scratch = cur[:0]
}
