package phy

import (
	"math/rand"
	"testing"

	"mosaic/internal/sim"
)

func streamFixture(t *testing.T, lanes, spares int) (*Stream, *sim.Engine) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Lanes = lanes
	cfg.Spares = spares
	link, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(1)
	s, err := NewStream(link, eng)
	if err != nil {
		t.Fatal(err)
	}
	return s, eng
}

func TestNewStreamValidation(t *testing.T) {
	if _, err := NewStream(nil, sim.NewEngine(1)); err == nil {
		t.Error("nil link accepted")
	}
	link, _ := New(DefaultConfig())
	if _, err := NewStream(link, nil); err == nil {
		t.Error("nil engine accepted")
	}
}

func TestStreamDeliversEverything(t *testing.T) {
	s, eng := streamFixture(t, 20, 2)
	rng := rand.New(rand.NewSource(2))
	var delivered int
	s.OnDeliver = func(f []byte, at sim.Time) {
		delivered++
		if at < 0 {
			t.Error("negative delivery time")
		}
	}
	frames := make([][]byte, 200)
	for i := range frames {
		frames[i] = make([]byte, 1500)
		rng.Read(frames[i])
	}
	s.Enqueue(frames...)
	eng.Run()
	if s.FramesOut != 200 || delivered != 200 || s.FramesLost != 0 {
		t.Fatalf("out=%d cb=%d lost=%d", s.FramesOut, delivered, s.FramesLost)
	}
	if s.QueueDepth() != 0 {
		t.Error("queue not drained")
	}
	if len(s.History) == 0 {
		t.Error("no history samples")
	}
}

func TestStreamTimingMatchesRate(t *testing.T) {
	s, eng := streamFixture(t, 20, 0) // 40 Gbps aggregate
	payload := 2_000_000              // 2 MB
	nframes := payload / 1000
	frames := make([][]byte, nframes)
	for i := range frames {
		frames[i] = make([]byte, 1000)
	}
	s.Enqueue(frames...)
	eng.Run()
	// Serialization time ≈ payload bits / goodput.
	goodput := s.Link().AggregateRate() * s.Link().GoodputFraction()
	want := float64(payload*8) / goodput
	got := float64(eng.Now())
	if got < want*0.9 || got > want*1.5 {
		t.Errorf("stream took %v s, expected ~%v s", got, want)
	}
	if g := s.GoodputBps(); g < goodput*0.5 || g > goodput*1.1 {
		t.Errorf("measured goodput %v vs theoretical %v", g, goodput)
	}
}

func TestStreamMidFlightFailure(t *testing.T) {
	s, eng := streamFixture(t, 20, 2)
	rng := rand.New(rand.NewSource(3))
	frames := make([][]byte, 400)
	for i := range frames {
		frames[i] = make([]byte, 1500)
		rng.Read(frames[i])
	}
	s.Enqueue(frames...)
	// Kill a channel partway through, then spare it out shortly after —
	// the stream must lose a little and then fully recover.
	eng.After(20e-6, func() { s.Link().KillChannel(7) })
	eng.After(60e-6, func() { s.Link().FailChannel(7) })
	eng.Run()
	if s.FramesLost == 0 {
		t.Skip("failure window missed all superframes; timing drifted")
	}
	if s.FramesOut+s.FramesLost != 400 {
		t.Fatalf("accounting broken: out %d + lost %d != 400", s.FramesOut, s.FramesLost)
	}
	// The tail of history (after sparing) must be clean.
	last := s.History[len(s.History)-1]
	if last.Lost != 0 || last.UnitsLost != 0 {
		t.Errorf("final superframe still lossy: %+v", last)
	}
}

func TestStreamRateDropsOnDegradation(t *testing.T) {
	s, eng := streamFixture(t, 10, 0)
	frames := make([][]byte, 300)
	for i := range frames {
		frames[i] = make([]byte, 1500)
	}
	s.Enqueue(frames...)
	eng.After(10e-6, func() {
		s.Link().KillChannel(4)
		s.Link().FailChannel(4) // no spares: degrade
	})
	eng.Run()
	first := s.History[0]
	last := s.History[len(s.History)-1]
	if !(last.Rate < first.Rate) {
		t.Errorf("rate should degrade: %v -> %v", first.Rate, last.Rate)
	}
}

func TestStreamGoodputZeroBeforeTime(t *testing.T) {
	s, _ := streamFixture(t, 4, 0)
	if s.GoodputBps() != 0 {
		t.Error("goodput before any time should be 0")
	}
}

func TestStreamEnqueueWhileRunning(t *testing.T) {
	s, eng := streamFixture(t, 10, 0)
	a := make([][]byte, 50)
	for i := range a {
		a[i] = make([]byte, 1000)
	}
	s.Enqueue(a...)
	eng.After(5e-6, func() {
		b := make([][]byte, 50)
		for i := range b {
			b[i] = make([]byte, 1000)
		}
		s.Enqueue(b...)
	})
	eng.Run()
	if s.FramesOut != 100 {
		t.Fatalf("out = %d, want 100", s.FramesOut)
	}
}
