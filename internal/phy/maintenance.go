package phy

import "fmt"

// Predictive maintenance: LEDs age gracefully (their BER drifts up over
// months) rather than dying abruptly like lasers. Because the monitor sees
// per-channel corrected-error rates for free, a link can spare out a
// *degrading* channel before it ever drops a frame. This file implements
// that policy.

// MaintenancePolicy decides when to proactively replace channels.
type MaintenancePolicy struct {
	// SpareAboveBER: channels whose estimated pre-FEC BER exceeds this are
	// proactively remapped while spares remain.
	SpareAboveBER float64
	// KeepSpares holds back this many spares for hard failures; proactive
	// remaps stop when only KeepSpares are left.
	KeepSpares int
}

// DefaultMaintenancePolicy spares out channels beyond 1e-6 (three decades
// before the FEC limit) while keeping one spare in reserve.
func DefaultMaintenancePolicy() MaintenancePolicy {
	return MaintenancePolicy{SpareAboveBER: 1e-6, KeepSpares: 1}
}

// MaintenanceAction records one proactive replacement.
type MaintenanceAction struct {
	Physical     int
	EstimatedBER float64
	Event        RemapEvent
}

// String renders the action.
func (a MaintenanceAction) String() string {
	return fmt.Sprintf("proactive: channel %d at estBER %.2e: %v",
		a.Physical, a.EstimatedBER, a.Event)
}

// Maintain applies the policy once: it examines the monitor's estimates
// and spares out the worst offenders, worst first, while the spare budget
// allows. It returns the actions taken. Call it periodically (e.g. after
// every N superframes); it is cheap and idempotent.
func (l *Link) Maintain(p MaintenancePolicy) []MaintenanceAction {
	if p.SpareAboveBER <= 0 {
		return nil
	}
	var actions []MaintenanceAction
	for _, h := range l.monitor.WorstChannels(l.mapper.NumChannels()) {
		if l.mapper.SparesLeft() <= p.KeepSpares {
			break
		}
		if h.State == Failed {
			continue // already handled by hard-failure paths
		}
		if h.EstimatedBER() <= p.SpareAboveBER {
			break // sorted worst-first: nothing further qualifies
		}
		if l.mapper.LaneOf(h.Physical) < 0 {
			continue // a spare is degrading; nothing to remap
		}
		l.monitor.MarkFailed(h.Physical)
		ev := l.mapper.Fail(h.Physical)
		actions = append(actions, MaintenanceAction{
			Physical:     h.Physical,
			EstimatedBER: h.EstimatedBER(),
			Event:        ev,
		})
	}
	return actions
}
