package phy

import (
	"bytes"
	"testing"

	"mosaic/internal/refmodel"
)

// Fuzz targets: every decoder that faces wire bytes must tolerate
// arbitrary garbage without panicking, and any frame it does deliver must
// pass its own integrity checks.

func FuzzFramerDecodeStream(f *testing.F) {
	fr := NewFramer(NewRSLite(), 63)
	good := fr.Encode(3, 9, make([]byte, 63))
	f.Add(good)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{marker0, marker1}, 50))
	f.Add(append(append([]byte{0xff, 0x00}, good...), 0xd5))
	f.Fuzz(func(t *testing.T, data []byte) {
		frames, st := fr.DecodeStream(data)
		if st.Frames != len(frames) {
			t.Fatalf("stats/frames mismatch: %d vs %d", st.Frames, len(frames))
		}
		for _, cf := range frames {
			if len(cf.Payload) != 63 {
				t.Fatal("delivered frame with wrong payload size")
			}
		}
	})
}

func FuzzHammingFECDecode(f *testing.F) {
	enc := HammingFEC{}.Encode(make([]byte, 64))
	f.Add(enc, 64)
	f.Add([]byte{}, 0)
	f.Fuzz(func(t *testing.T, data []byte, plainLen int) {
		if plainLen < 0 || plainLen > 4096 {
			return
		}
		out, _, err := HammingFEC{}.Decode(data, plainLen)
		if err == nil && len(out) != plainLen {
			// Truncated-stream errors are fine; success must honour length.
			t.Fatalf("decode returned %d bytes for plainLen %d", len(out), plainLen)
		}
	})
}

func FuzzRSLiteDecode(f *testing.F) {
	fec := NewRSLite()
	ref := refmodel.NewRSLiteRef()
	enc := fec.Encode(make([]byte, 64))
	f.Add(enc)
	damaged := append([]byte(nil), enc...)
	damaged[3] ^= 0x40
	damaged[40] ^= 0x01
	f.Add(damaged)
	overloaded := append([]byte(nil), enc...)
	for i := 0; i < 10; i++ {
		overloaded[i*5] ^= 0xFF
	}
	f.Add(overloaded)
	f.Fuzz(func(t *testing.T, data []byte) {
		out, ncorr, err := fec.Decode(data, 64)
		// Truncated-stream errors return best-effort bytes; a successful
		// decode must honour the requested plaintext length exactly.
		if err == nil && len(out) != 64 {
			t.Fatalf("decode returned %d bytes", len(out))
		}
		// Differential oracle: the brute-force reference decoder must
		// reach the same verdict, the same bytes, and the same correction
		// count on every input the fuzzer invents.
		refOut, refCorr, refStatus := ref.Decode(data, 64)
		truncated := len(data) < fec.EncodedLen(64)
		if truncated != (refStatus == refmodel.FECTruncated) {
			t.Fatalf("truncation verdicts differ: optimized err=%v reference status=%d", err, refStatus)
		}
		if truncated {
			return
		}
		if (err == nil) != (refStatus == refmodel.FECOK) {
			t.Fatalf("decode verdicts differ: optimized err=%v reference status=%d", err, refStatus)
		}
		if !bytes.Equal(out, refOut) {
			t.Fatalf("decoded bytes differ:\noptimized %x\nreference %x", out, refOut)
		}
		if ncorr != refCorr {
			t.Fatalf("correction counts differ: optimized %d reference %d", ncorr, refCorr)
		}
	})
}

func FuzzParseFramesNeverPanics(f *testing.F) {
	// Random descrambled block streams must never panic the frame parser,
	// and anything it delivers must have passed the FCS.
	f.Add(make([]byte, 90))
	f.Add([]byte{0x01, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Fuzz(func(t *testing.T, data []byte) {
		var st ExchangeStats
		var scratch []byte
		var frames [][]byte
		parseFrames(data, &st, &scratch, func(frame []byte) {
			frames = append(frames, append([]byte(nil), frame...))
		})
		// An FCS collision on random garbage is ~2^-32 per candidate;
		// tolerate it but verify sizes are sane.
		for _, fr := range frames {
			if len(fr) < 3 {
				t.Fatal("undersized frame delivered")
			}
		}
	})
}
