package scenario

import (
	"fmt"
	"math"
	"math/rand"

	"mosaic/internal/netsim"
	"mosaic/internal/netsim/workload"
)

// A workload generator injects flows into the fleet engine each epoch.
// Like environments, every runner draws from its own RNG stream seeded
// from spec seed × component content, and runners execute in canonical
// component order, so the injected flow sequence (IDs, sizes, hashes)
// is independent of how the spec's arrays were ordered.
type workloadRunner interface {
	name() string
	// inject starts this epoch's flows and returns (injected, unroutable).
	inject(e int, fs *netsim.FleetSim, hosts []int) (int, int)
}

// newWorkloadRunner builds the runner for a resolved workload component.
func newWorkloadRunner(r resolved, topo TopoSpec, epochs int) workloadRunner {
	rng := rand.New(rand.NewSource(r.seed))
	switch r.comp.Kind {
	case KindAllReduce:
		return &allreduceWL{
			id: r.name, rng: rng,
			groups: pickGroups(rng, topo.Hosts(), r.comp.Groups, r.comp.GroupSize),
			rounds: r.comp.RoundsPerEpoch, bits: r.comp.FlowBits,
		}
	case KindAllToAll:
		return &alltoallWL{
			id: r.name, rng: rng,
			groups: pickGroups(rng, topo.Hosts(), r.comp.Groups, r.comp.GroupSize),
			period: r.comp.PeriodEpochs, bits: r.comp.FlowBits,
		}
	case KindIncast:
		return &incastWL{
			id: r.name, rng: rng,
			fanIn: r.comp.FanIn, period: r.comp.PeriodEpochs, bits: r.comp.FlowBits,
		}
	case KindStorage:
		return &storageWL{
			id: r.name, rng: rng,
			writes: r.comp.WritesPerEpoch, fanout: r.comp.Fanout, bits: r.comp.FlowBits,
		}
	case KindDiurnal:
		dist := workload.WebSearch()
		return &diurnalWL{
			id: r.name, rng: rng, epochs: epochs,
			peak: r.comp.PeakLoad, scale: r.comp.MeanBits / dist.MeanBits(),
			dist: dist, flash: r.comp.Flash,
		}
	}
	panic(fmt.Sprintf("scenario: no runner for workload kind %q", r.comp.Kind))
}

// pickGroups partitions a seeded host permutation into `groups`
// consecutive chunks of `size` — fixed collective membership for the
// whole run, the way training jobs pin their workers.
func pickGroups(rng *rand.Rand, hosts, groups, size int) [][]int {
	perm := rng.Perm(hosts)
	out := make([][]int, 0, groups)
	for g := 0; g < groups; g++ {
		out = append(out, perm[g*size:(g+1)*size])
	}
	return out
}

// injectFlow starts one flow, counting unroutable injections (every
// link on the only viable route dead) rather than failing the run.
func injectFlow(fs *netsim.FleetSim, hosts []int, src, dst int, bits float64, hash uint64) (int, int) {
	if _, err := fs.Inject(hosts[src], hosts[dst], bits, hash); err != nil {
		return 0, 1
	}
	return 1, 0
}

// allreduceWL emits ring all-reduce traffic: every epoch, rounds×
// (per group) each member sends a chunk to its ring successor. Group
// membership is fixed at construction.
type allreduceWL struct {
	id     string
	rng    *rand.Rand
	groups [][]int
	rounds int
	bits   float64
}

func (w *allreduceWL) name() string { return w.id }

func (w *allreduceWL) inject(e int, fs *netsim.FleetSim, hosts []int) (int, int) {
	flows, unroutable := 0, 0
	for r := 0; r < w.rounds; r++ {
		for _, g := range w.groups {
			for i := range g {
				f, u := injectFlow(fs, hosts, g[i], g[(i+1)%len(g)], w.bits, w.rng.Uint64())
				flows += f
				unroutable += u
			}
		}
	}
	return flows, unroutable
}

// alltoallWL emits a full-mesh exchange inside each group every
// `period` epochs: N(N-1) flows of bits/(N-1) each, the shuffle phase
// of expert-parallel or reduce-scatter collectives.
type alltoallWL struct {
	id     string
	rng    *rand.Rand
	groups [][]int
	period int
	bits   float64
}

func (w *alltoallWL) name() string { return w.id }

func (w *alltoallWL) inject(e int, fs *netsim.FleetSim, hosts []int) (int, int) {
	if e%w.period != 0 {
		return 0, 0
	}
	flows, unroutable := 0, 0
	for _, g := range w.groups {
		per := w.bits / float64(len(g)-1)
		for i := range g {
			for j := range g {
				if i == j {
					continue
				}
				f, u := injectFlow(fs, hosts, g[i], g[j], per, w.rng.Uint64())
				flows += f
				unroutable += u
			}
		}
	}
	return flows, unroutable
}

// incastWL emits a periodic fan-in burst: every `period` epochs, fanIn
// distinct senders all target one receiver at once — the classic
// partition-aggregate incast that stresses the receiver's edge link.
type incastWL struct {
	id     string
	rng    *rand.Rand
	fanIn  int
	period int
	bits   float64
}

func (w *incastWL) name() string { return w.id }

func (w *incastWL) inject(e int, fs *netsim.FleetSim, hosts []int) (int, int) {
	if e%w.period != 0 {
		return 0, 0
	}
	perm := w.rng.Perm(len(hosts))
	target := perm[0]
	flows, unroutable := 0, 0
	for _, src := range perm[1 : w.fanIn+1] {
		f, u := injectFlow(fs, hosts, src, target, w.bits, w.rng.Uint64())
		flows += f
		unroutable += u
	}
	return flows, unroutable
}

// storageWL emits replication fan-out: each epoch, `writes` writes land
// on random primaries and each primary pushes a copy to `fanout`
// distinct replicas.
type storageWL struct {
	id     string
	rng    *rand.Rand
	writes int
	fanout int
	bits   float64
}

func (w *storageWL) name() string { return w.id }

func (w *storageWL) inject(e int, fs *netsim.FleetSim, hosts []int) (int, int) {
	flows, unroutable := 0, 0
	for n := 0; n < w.writes; n++ {
		perm := w.rng.Perm(len(hosts))
		primary := perm[0]
		for _, replica := range perm[1 : w.fanout+1] {
			f, u := injectFlow(fs, hosts, primary, replica, w.bits, w.rng.Uint64())
			flows += f
			unroutable += u
		}
	}
	return flows, unroutable
}

// diurnalWL emits user-facing load on a diurnal raised cosine: at epoch
// e of E the per-host arrival rate is peak·(1-cos(2πe/E))/2 flows per
// epoch, with WebSearch-distributed sizes rescaled to the requested
// mean. An optional flash crowd multiplies the load inside its window.
type diurnalWL struct {
	id     string
	rng    *rand.Rand
	epochs int
	peak   float64
	scale  float64
	dist   workload.SizeDist
	flash  *FlashSpec
}

func (w *diurnalWL) name() string { return w.id }

func (w *diurnalWL) inject(e int, fs *netsim.FleetSim, hosts []int) (int, int) {
	load := w.peak * (1 - math.Cos(2*math.Pi*float64(e)/float64(w.epochs))) / 2
	if f := w.flash; f != nil && e >= f.AtEpoch && e < f.AtEpoch+f.Epochs {
		load *= f.Mult
	}
	n := int(load * float64(len(hosts)))
	flows, unroutable := 0, 0
	for i := 0; i < n; i++ {
		src := w.rng.Intn(len(hosts))
		dst := w.rng.Intn(len(hosts) - 1)
		if dst >= src {
			dst++
		}
		bits := w.dist.SampleBits(w.rng) * w.scale
		f, u := injectFlow(fs, hosts, src, dst, bits, w.rng.Uint64())
		flows += f
		unroutable += u
	}
	return flows, unroutable
}
