package scenario

import (
	"math/rand"
	"testing"
)

// Composition order must not leak into results: the same workload ×
// environment set listed in any array order (including through refs)
// yields a byte-identical event log. 50 shuffled iterations, matching
// the repo's map-order regression pattern — a single pass can get
// lucky, a re-ordered RNG stream cannot survive 50.
func TestCompositionOrderInvariant50Iterations(t *testing.T) {
	base := Library()[0].Spec // E26: three workloads, one environment
	base.Epochs = 10          // keep 50 iterations cheap
	ref, err := Run(base, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	shuf := rand.New(rand.NewSource(99))
	for i := 0; i < 50; i++ {
		s := base
		s.Workloads = append([]Component(nil), base.Workloads...)
		s.Environments = append([]Component(nil), base.Environments...)
		shuf.Shuffle(len(s.Workloads), func(a, b int) {
			s.Workloads[a], s.Workloads[b] = s.Workloads[b], s.Workloads[a]
		})
		shuf.Shuffle(len(s.Environments), func(a, b int) {
			s.Environments[a], s.Environments[b] = s.Environments[b], s.Environments[a]
		})
		got, err := Run(s, Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if got.LogSHA != ref.LogSHA {
			t.Fatalf("iteration %d: shuffled spec diverged: sha %s vs %s\n%s",
				i, got.LogSHA, ref.LogSHA, firstLogDiff(ref.EventLog, got.EventLog))
		}
	}
}

// Inlining a def must be equivalent to referencing it: resolution
// canonicalizes by content, so {ref} and its target are the same
// component.
func TestRefVersusInlineEquivalent(t *testing.T) {
	withRef := Library()[0].Spec
	withRef.Epochs = 10

	inline := withRef
	inline.Workloads = append([]Component(nil), withRef.Workloads...)
	for i, c := range inline.Workloads {
		if c.Ref != "" {
			rc, err := inline.resolveComponent(c, 0, nil)
			if err != nil {
				t.Fatal(err)
			}
			inline.Workloads[i] = rc
		}
	}
	inline.Defs = nil

	a, err := Run(withRef, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(inline, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.LogSHA != b.LogSHA {
		t.Fatalf("ref vs inline diverged: %s vs %s\n%s",
			a.LogSHA, b.LogSHA, firstLogDiff(a.EventLog, b.EventLog))
	}
}

// Changing the spec seed must change the run (the seed actually reaches
// every component's stream), and repeating a seed must reproduce it.
func TestSeedReachesComponents(t *testing.T) {
	s := Library()[0].Spec
	s.Epochs = 8
	a, err := Run(s, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	again, err := Run(s, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.LogSHA != again.LogSHA {
		t.Fatal("same seed did not reproduce the run")
	}
	s.Seed = 12345
	b, err := Run(s, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.LogSHA == b.LogSHA {
		t.Fatal("different seed produced an identical run")
	}
}
