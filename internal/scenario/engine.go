package scenario

import (
	"crypto/sha256"
	"fmt"
	"math"
	"strings"

	"mosaic/internal/netsim"
	"mosaic/internal/telemetry"
)

// Options tunes one scenario run.
type Options struct {
	// Workers is the fleet engine's parallelism (<=0 = GOMAXPROCS,
	// 1 = sequential). The event log is byte-identical at any value.
	Workers int
	// CheckInvariants asserts netsim flow conservation and max-min at
	// every epoch's resolved point; a violation fails the run.
	CheckInvariants bool
	// Metrics, when non-nil, receives per-scenario counters
	// (mosaic_scenario_* families, labelled by scenario).
	Metrics *telemetry.Registry
}

// FaultCount pairs an environment's actually-injected event count with
// its closed-form expectation.
type FaultCount struct {
	Name  string  `json:"name"`
	Count int     `json:"count"`
	Mean  float64 `json:"mean"`
	Sigma float64 `json:"sigma"`
}

// WindowStat aggregates a run window for table rows.
type WindowStat struct {
	Start, End int // epoch range [Start, End)
	Flows      int // flows injected in the window
	Unroutable int
	EnvEvents  int
	Done       int     // flows completed in the window
	BitsDone   float64 // bits delivered by those completions
	ActiveEnd  int     // in-flight flows at the window's closing barrier
	CrossEnd   int     // cross-pod among them
}

// Result is one scenario run's full outcome. EventLog (and its LogSHA)
// is the determinism witness: identical for any worker count and any
// spec array ordering.
type Result struct {
	Name       string
	Epochs     int
	Hosts      int
	Links      int
	Flows      int
	Unroutable int
	Done       int
	Stalled    int
	BitsDone   float64
	Faults     []FaultCount // canonical environment order
	Windows    []WindowStat
	EventLog   []string
	LogSHA     string
}

// Run executes a validated spec over a fresh fleet: each epoch the
// environments fold their capacity fractions into a per-link
// multiplier vector (published through SetLinkFraction), the workloads
// inject their flows in canonical component order, and the sharded
// engine steps one epoch. Determinism contract: everything outside
// fs.Step is sequential, every RNG stream is content-seeded, so the
// event log is byte-identical at any worker count.
func Run(spec Spec, opts Options) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	ws, err := spec.resolve(spec.Workloads, "workload")
	if err != nil {
		return nil, err
	}
	es, err := spec.resolve(spec.Environments, "environment")
	if err != nil {
		return nil, err
	}

	topo, err := netsim.NewFleet(spec.Topology.Pods, spec.Topology.Leaves,
		spec.Topology.Spines, spec.Topology.HostsPerLeaf, spec.Topology.LinkRateBps)
	if err != nil {
		return nil, err
	}
	fs := netsim.NewFleetSim(topo, opts.Workers)
	hosts := topo.Hosts()

	var invariantErr error
	var invariantEpoch int
	if opts.CheckInvariants {
		epoch := 0
		fs.SetResolvedHook(func() {
			if invariantErr == nil {
				if err := fs.CheckInvariants(); err != nil {
					invariantErr, invariantEpoch = err, epoch
				}
			}
			epoch++
		})
	}

	workloads := make([]workloadRunner, 0, len(ws))
	for _, r := range ws {
		workloads = append(workloads, newWorkloadRunner(r, spec.Topology, spec.Epochs))
	}
	envs := make([]envRunner, 0, len(es))
	for _, r := range es {
		envs = append(envs, newEnvRunner(r, spec.Topology, spec.Epochs))
	}

	res := &Result{
		Name:   spec.Name,
		Epochs: spec.Epochs,
		Hosts:  len(hosts),
		Links:  len(topo.Links),
	}
	logf := func(format string, args ...any) {
		res.EventLog = append(res.EventLog, fmt.Sprintf(format, args...))
	}
	logf("scenario=%s seed=%d epochs=%d hosts=%d links=%d workloads=%d environments=%d",
		spec.Name, spec.Seed, spec.Epochs, len(hosts), len(topo.Links), len(workloads), len(envs))

	winLen := spec.windowEpochs()
	win := WindowStat{Start: 0}
	closeWindow := func(endEpoch int) {
		win.End = endEpoch
		win.ActiveEnd = fs.ActiveFlows()
		win.CrossEnd = fs.CrossFlows()
		res.Windows = append(res.Windows, win)
		win = WindowStat{Start: endEpoch}
	}

	mult := make([]float64, len(topo.Links))
	eventCounts := make([]int, len(envs))
	for e := 0; e < spec.Epochs; e++ {
		for i := range mult {
			mult[i] = 1
		}
		envEvents := 0
		for i, env := range envs {
			n := env.apply(e, mult, logf)
			eventCounts[i] += n
			envEvents += n
		}
		for l := range mult {
			fs.SetLinkFraction(l, mult[l])
		}
		flows, unroutable := 0, 0
		for _, w := range workloads {
			f, u := w.inject(e, fs, hosts)
			flows += f
			unroutable += u
		}
		fs.Step(1)
		logf("epoch=%d flows=%d unroutable=%d env_events=%d active=%d cross=%d",
			e, flows, unroutable, envEvents, fs.ActiveFlows(), fs.CrossFlows())

		res.Flows += flows
		res.Unroutable += unroutable
		win.Flows += flows
		win.Unroutable += unroutable
		win.EnvEvents += envEvents
		if (e+1)%winLen == 0 || e == spec.Epochs-1 {
			closeWindow(e + 1)
		}
	}
	if invariantErr != nil {
		return nil, fmt.Errorf("scenario %s: invariant violated at epoch %d: %w",
			spec.Name, invariantEpoch, invariantErr)
	}

	// Completion accounting, bucketed into windows by end time. A flow
	// finishing at barrier time t completed during epoch ceil(t)-1.
	for _, r := range fs.Records() {
		if r.Stalled {
			res.Stalled++
			continue
		}
		res.Done++
		res.BitsDone += r.SizeBits
		e := int(math.Ceil(float64(r.End))) - 1
		if e < 0 {
			e = 0
		}
		if w := e / winLen; w < len(res.Windows) {
			res.Windows[w].Done++
			res.Windows[w].BitsDone += r.SizeBits
		}
	}
	for i, env := range envs {
		exp := env.expect()
		res.Faults = append(res.Faults, FaultCount{
			Name: env.name(), Count: eventCounts[i], Mean: exp.Mean, Sigma: exp.Sigma,
		})
	}

	res.EventLog = append(res.EventLog, fs.EventLog()...)
	sum := sha256.Sum256([]byte(strings.Join(res.EventLog, "\n")))
	res.LogSHA = fmt.Sprintf("%x", sum[:8])

	if reg := opts.Metrics; reg != nil {
		reg.Help("mosaic_scenario_runs_total", "Completed scenario runs by scenario name.")
		reg.Help("mosaic_scenario_flows_total", "Flows injected by scenario runs.")
		reg.Help("mosaic_scenario_unroutable_total", "Unroutable injections during scenario runs.")
		reg.Help("mosaic_scenario_env_events_total", "Environment fault events injected, by scenario and environment.")
		reg.Counter("mosaic_scenario_runs_total", "scenario", spec.Name).Inc()
		reg.Counter("mosaic_scenario_flows_total", "scenario", spec.Name).Add(uint64(res.Flows))
		reg.Counter("mosaic_scenario_unroutable_total", "scenario", spec.Name).Add(uint64(res.Unroutable))
		for _, fc := range res.Faults {
			reg.Counter("mosaic_scenario_env_events_total",
				"scenario", spec.Name, "env", fc.Name).Add(uint64(fc.Count))
		}
	}
	return res, nil
}
