package scenario

import (
	"strings"
	"testing"
)

// validSpecJSON is a minimal well-formed spec used as the mutation base.
const validSpecJSON = `{
  "name": "unit-mix",
  "seed": 7,
  "epochs": 8,
  "topology": {"pods": 2, "leaves": 2, "spines": 2, "hosts_per_leaf": 2, "link_rate_bps": 100e9},
  "defs": {
    "inc": {"kind": "incast", "fan_in": 3, "period_epochs": 2, "flow_bits": 1e9}
  },
  "workloads": [
    {"ref": "inc"},
    {"kind": "storage", "writes_per_epoch": 2, "fanout": 2, "flow_bits": 5e8}
  ],
  "environments": [
    {"kind": "radiation", "seu_rate": 0.05, "seu_fraction": 0.5}
  ]
}`

func TestParseValidSpec(t *testing.T) {
	s, err := Parse([]byte(validSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "unit-mix" || s.Epochs != 8 || len(s.Workloads) != 2 {
		t.Fatalf("parsed spec mangled: %+v", s)
	}
	if got := s.Topology.Hosts(); got != 8 {
		t.Fatalf("Hosts() = %d, want 8", got)
	}
	if got := s.Topology.Links(); got != 2*(4+4+2) {
		t.Fatalf("Links() = %d, want 20", got)
	}
}

// Every malformed composition the fuzzer hunts for must already be
// rejected by the table: unknown fields, bad kinds, out-of-range rates,
// unknown/cyclic/impure refs, infeasible group sizes.
func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		json string
		want string // substring of the error
	}{
		{
			"unknown field",
			strings.Replace(validSpecJSON, `"seed": 7`, `"seed": 7, "bogus": 1`, 1),
			"bogus",
		},
		{
			"bad name",
			strings.Replace(validSpecJSON, `"unit-mix"`, `"Bad Name!"`, 1),
			"bad name",
		},
		{
			"zero epochs",
			strings.Replace(validSpecJSON, `"epochs": 8`, `"epochs": 0`, 1),
			"epochs",
		},
		{
			"epochs over cap",
			strings.Replace(validSpecJSON, `"epochs": 8`, `"epochs": 100000`, 1),
			"epochs",
		},
		{
			"zero-host topology",
			strings.Replace(validSpecJSON, `"pods": 2`, `"pods": 0`, 1),
			"pods",
		},
		{
			"negative link rate",
			strings.Replace(validSpecJSON, `"link_rate_bps": 100e9`, `"link_rate_bps": -1`, 1),
			"link_rate_bps",
		},
		{
			"no workloads",
			strings.Replace(validSpecJSON, `{"ref": "inc"},
    {"kind": "storage", "writes_per_epoch": 2, "fanout": 2, "flow_bits": 5e8}`, ``, 1),
			"workloads",
		},
		{
			"unknown workload kind",
			strings.Replace(validSpecJSON, `"kind": "storage"`, `"kind": "mystery"`, 1),
			"not a workload kind",
		},
		{
			"environment kind as workload",
			strings.Replace(validSpecJSON,
				`{"kind": "storage", "writes_per_epoch": 2, "fanout": 2, "flow_bits": 5e8}`,
				`{"kind": "thermal", "base_k": 300, "swing_k": 50, "period_epochs": 4, "margin_db": 3}`, 1),
			"not a workload kind",
		},
		{
			"out-of-range seu rate",
			strings.Replace(validSpecJSON, `"seu_rate": 0.05`, `"seu_rate": 0.9`, 1),
			"seu_rate",
		},
		{
			"radiation without any rate",
			strings.Replace(validSpecJSON,
				`{"kind": "radiation", "seu_rate": 0.05, "seu_fraction": 0.5}`,
				`{"kind": "radiation"}`, 1),
			"radiation needs",
		},
		{
			"unknown ref",
			strings.Replace(validSpecJSON, `{"ref": "inc"}`, `{"ref": "nope"}`, 1),
			`unknown ref "nope"`,
		},
		{
			"impure ref",
			strings.Replace(validSpecJSON, `{"ref": "inc"}`, `{"ref": "inc", "fan_in": 4}`, 1),
			"must not carry other fields",
		},
		{
			"self cycle",
			strings.Replace(validSpecJSON,
				`"inc": {"kind": "incast", "fan_in": 3, "period_epochs": 2, "flow_bits": 1e9}`,
				`"inc": {"ref": "inc"}`, 1),
			"cyclic ref",
		},
		{
			"two-step cycle",
			strings.Replace(validSpecJSON,
				`"inc": {"kind": "incast", "fan_in": 3, "period_epochs": 2, "flow_bits": 1e9}`,
				`"inc": {"ref": "other"}, "other": {"ref": "inc"}`, 1),
			"cyclic ref",
		},
		{
			"infeasible fan-in",
			strings.Replace(validSpecJSON, `"fan_in": 3`, `"fan_in": 32`, 1),
			"needs",
		},
		{
			"window beyond epochs",
			strings.Replace(validSpecJSON, `"epochs": 8`, `"epochs": 8, "window_epochs": 9`, 1),
			"window_epochs",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.json))
			if err == nil {
				t.Fatalf("spec accepted:\n%s", tc.json)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// A ref chain through defs must resolve to the def's concrete
// component and validate it in place.
func TestRefChainResolves(t *testing.T) {
	j := strings.Replace(validSpecJSON,
		`"inc": {"kind": "incast", "fan_in": 3, "period_epochs": 2, "flow_bits": 1e9}`,
		`"inc": {"ref": "deep"}, "deep": {"kind": "incast", "fan_in": 3, "period_epochs": 2, "flow_bits": 1e9}`, 1)
	s, err := Parse([]byte(j))
	if err != nil {
		t.Fatal(err)
	}
	ws, err := s.resolve(s.Workloads, "workload")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range ws {
		if r.comp.Kind == KindIncast && r.comp.FanIn == 3 {
			found = true
		}
	}
	if !found {
		t.Fatal("ref chain did not resolve to the concrete incast component")
	}
}

// An unreferenced def with a latent cycle must still be rejected.
func TestLatentDefCycleRejected(t *testing.T) {
	j := strings.Replace(validSpecJSON,
		`"inc": {"kind": "incast", "fan_in": 3, "period_epochs": 2, "flow_bits": 1e9}`,
		`"inc": {"kind": "incast", "fan_in": 3, "period_epochs": 2, "flow_bits": 1e9}, "a": {"ref": "b"}, "b": {"ref": "a"}`, 1)
	if _, err := Parse([]byte(j)); err == nil {
		t.Fatal("latent def cycle accepted")
	}
}

// Library specs must validate and round-trip through their own encoder.
func TestLibrarySpecsValidate(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Library() {
		if err := e.Spec.Validate(); err != nil {
			t.Errorf("%s: %v", e.ID, err)
		}
		if seen[e.ID] || seen[e.Spec.Name] {
			t.Errorf("duplicate scenario identity %s/%s", e.ID, e.Spec.Name)
		}
		seen[e.ID], seen[e.Spec.Name] = true, true

		var b strings.Builder
		if err := e.Spec.Encode(&b); err != nil {
			t.Fatal(err)
		}
		back, err := Parse([]byte(b.String()))
		if err != nil {
			t.Errorf("%s: round-trip: %v", e.ID, err)
		}
		if back.Name != e.Spec.Name {
			t.Errorf("%s: round-trip changed name to %q", e.ID, back.Name)
		}
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("E26"); !ok {
		t.Fatal("Lookup(E26) failed")
	}
	if e, ok := Lookup("flash-diurnal-thermal"); !ok || e.ID != "E27" {
		t.Fatalf("Lookup by spec name = %+v, %v", e, ok)
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("Lookup accepted an unknown scenario")
	}
}
