package scenario

import (
	"fmt"
	"math"
)

// Report is one scenario's conformance outcome: the properties the
// harness asserted and the numbers backing them. The CI job renders
// these as per-scenario artifact tables.
type Report struct {
	Scenario string
	LogSHA   string
	Workers  []int // worker counts whose event logs matched byte-for-byte
	Epochs   int
	Flows    int
	Done     int
	Stalled  int
	Faults   []FaultCount
}

// Verify runs a spec's full conformance suite:
//
//	(a) worker-count invariance — the run repeats at every count in
//	    workers and the event logs must be byte-identical;
//	(b) flow conservation and max-min — netsim.CheckInvariants is
//	    asserted at every epoch's resolved point of every run;
//	(c) fault expectation — each environment's injected event count
//	    must sit within 6 sigma + 0.5 of its closed-form mean (exact
//	    for deterministic environments; runs are seeded, so this is a
//	    regression pin, not a flaky statistical test).
//
// workers must list at least one count; 1 and 0 (GOMAXPROCS) is the
// canonical pair.
func Verify(spec Spec, workers []int) (*Report, error) {
	if len(workers) == 0 {
		return nil, fmt.Errorf("scenario %s: conformance needs at least one worker count", spec.Name)
	}
	base, err := Run(spec, Options{Workers: workers[0], CheckInvariants: true})
	if err != nil {
		return nil, err
	}
	for _, w := range workers[1:] {
		r, err := Run(spec, Options{Workers: w, CheckInvariants: true})
		if err != nil {
			return nil, err
		}
		if r.LogSHA != base.LogSHA {
			return nil, fmt.Errorf("scenario %s: event log diverges at workers=%d (sha %s) vs workers=%d (sha %s): %s",
				spec.Name, w, r.LogSHA, workers[0], base.LogSHA, firstLogDiff(base.EventLog, r.EventLog))
		}
	}
	for _, fc := range base.Faults {
		tol := 6*fc.Sigma + 0.5
		if math.Abs(float64(fc.Count)-fc.Mean) > tol {
			return nil, fmt.Errorf("scenario %s: environment %s injected %d events, expected %.1f ± %.1f",
				spec.Name, fc.Name, fc.Count, fc.Mean, tol)
		}
	}
	return &Report{
		Scenario: spec.Name,
		LogSHA:   base.LogSHA,
		Workers:  workers,
		Epochs:   base.Epochs,
		Flows:    base.Flows,
		Done:     base.Done,
		Stalled:  base.Stalled,
		Faults:   base.Faults,
	}, nil
}

// firstLogDiff locates the first divergent line between two event logs.
func firstLogDiff(a, b []string) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return fmt.Sprintf("first diff at line %d: %q vs %q", i, a[i], b[i])
		}
	}
	return fmt.Sprintf("length mismatch: %d vs %d lines", len(a), len(b))
}
