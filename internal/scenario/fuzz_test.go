package scenario

import (
	"strings"
	"testing"
)

// FuzzScenarioSpec drives the JSON spec parser/validator with arbitrary
// bytes: it must never panic, and anything it accepts must satisfy the
// schema's own contracts — re-validate cleanly, resolve both component
// lists (no surviving refs, cycles, or out-of-range parameters), stay
// inside the work bounds, and round-trip through Encode.
func FuzzScenarioSpec(f *testing.F) {
	f.Add([]byte(validSpecJSON))
	for _, e := range Library() {
		var b strings.Builder
		if err := e.Spec.Encode(&b); err != nil {
			f.Fatal(err)
		}
		f.Add([]byte(b.String()))
	}
	// Seeds for the classes the fuzzer hunts: malformed composition,
	// out-of-range rates, cyclic references.
	f.Add([]byte(`{"name":"x","epochs":1,"topology":{"pods":1,"leaves":1,"spines":1,"hosts_per_leaf":2,"link_rate_bps":1e9},"workloads":[{"ref":"a"}],"defs":{"a":{"ref":"b"},"b":{"ref":"a"}}}`))
	f.Add([]byte(`{"name":"x","epochs":1,"topology":{"pods":1,"leaves":1,"spines":1,"hosts_per_leaf":2,"link_rate_bps":1e9},"workloads":[{"kind":"diurnal","peak_load":1e308,"mean_bits":1e9}]}`))
	f.Add([]byte(`{"name":"x","epochs":1,"workloads":[{"kind":"incast","fan_in":-3,"period_epochs":0,"flow_bits":"NaN"}]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"name":"x","epochs":1,"topology":{"pods":1,"leaves":1,"spines":1,"hosts_per_leaf":2,"link_rate_bps":1e9},"workloads":[{"kind":"radiation","seu_rate":0.1,"seu_fraction":0.5}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data)
		if err != nil {
			return // rejection is the common, correct outcome
		}
		// Accepted specs must uphold the schema's promises.
		if err := s.Validate(); err != nil {
			t.Fatalf("accepted spec fails re-validation: %v", err)
		}
		ws, err := s.resolve(s.Workloads, "workload")
		if err != nil {
			t.Fatalf("accepted spec fails workload resolution: %v", err)
		}
		es, err := s.resolve(s.Environments, "environment")
		if err != nil {
			t.Fatalf("accepted spec fails environment resolution: %v", err)
		}
		for _, r := range append(ws, es...) {
			if r.comp.Ref != "" {
				t.Fatalf("resolved component still carries ref %q", r.comp.Ref)
			}
		}
		if s.Epochs > MaxEpochs || s.Topology.Links() > 50000 {
			t.Fatalf("accepted spec exceeds work bounds: epochs=%d links=%d", s.Epochs, s.Topology.Links())
		}
		var b strings.Builder
		if err := s.Encode(&b); err != nil {
			t.Fatalf("accepted spec fails to encode: %v", err)
		}
		if _, err := Parse([]byte(b.String())); err != nil {
			t.Fatalf("accepted spec fails round-trip: %v", err)
		}
	})
}
