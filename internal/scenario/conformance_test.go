package scenario

import (
	"testing"
)

// The conformance harness is the tentpole's contract: every registered
// scenario must produce byte-identical event logs at 1, 3, and
// GOMAXPROCS workers, hold netsim conservation + max-min at every
// resolved point, and inject fault counts matching each environment's
// closed-form expectation. Table-driven over the whole library so a
// newly registered scenario is conformance-tested by construction.
func TestLibraryConformance(t *testing.T) {
	entries := Library()
	if len(entries) < 2 {
		t.Fatalf("library has %d scenarios, want at least E26 and E27", len(entries))
	}
	for _, e := range entries {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			rep, err := Verify(e.Spec, []int{1, 3, 0})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Flows == 0 {
				t.Fatal("scenario injected no flows")
			}
			if rep.Done == 0 {
				t.Fatal("scenario completed no flows")
			}
			if len(rep.Faults) != len(e.Spec.Environments) {
				t.Fatalf("report has %d fault counts, want %d", len(rep.Faults), len(e.Spec.Environments))
			}
			for _, fc := range rep.Faults {
				if fc.Count == 0 && fc.Mean >= 1 {
					t.Errorf("environment %s injected no events (expected mean %.1f)", fc.Name, fc.Mean)
				}
			}
			t.Logf("%s: sha=%s flows=%d done=%d stalled=%d", e.ID, rep.LogSHA, rep.Flows, rep.Done, rep.Stalled)
		})
	}
}

// A violated fault expectation must fail conformance: an environment
// whose closed-form mean is far from what the seeded run injects is a
// model bug, not noise.
func TestVerifyFaultExpectationTolerance(t *testing.T) {
	spec := Library()[0].Spec
	rep, err := Verify(spec, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	for _, fc := range rep.Faults {
		if fc.Sigma == 0 {
			continue
		}
		// The seeded count sits inside 6 sigma; a 12-sigma shift of the
		// same count against the same mean must be rejected. Simulate by
		// checking the arithmetic the harness applies.
		tol := 6*fc.Sigma + 0.5
		shifted := fc.Mean + 12*fc.Sigma
		if d := shifted - fc.Mean; d <= tol {
			t.Fatalf("tolerance arithmetic degenerate: 12 sigma %.1f inside tol %.1f", d, tol)
		}
	}
}

// Verify must reject an empty worker list instead of silently passing.
func TestVerifyNeedsWorkers(t *testing.T) {
	if _, err := Verify(Library()[0].Spec, nil); err == nil {
		t.Fatal("Verify accepted an empty worker list")
	}
}
