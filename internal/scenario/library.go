package scenario

// LibraryEntry binds a scenario spec to the experiment identity it
// registers under in internal/experiments: every entry gets a table, a
// seed, a golden-sha determinism pin, and conformance coverage for
// free, and is addressable by mosaicfleetd's link-create `scenario`
// field (by experiment ID or spec name).
type LibraryEntry struct {
	ID    string
	Title string
	Claim string
	Spec  Spec
}

// Library returns the registered scenarios in presentation order.
// Entries are returned by value; callers may adjust Spec.Seed (the
// experiment bridge substitutes the run seed) without affecting the
// library.
func Library() []LibraryEntry {
	return []LibraryEntry{
		{
			ID:    "E26",
			Title: "AI-collective incast under radiation SEU bursts",
			Claim: "collective traffic (all-reduce + all-to-all + incast) keeps completing while correlated SEU bursts dip links; fault counts match the Binomial expectation",
			Spec: Spec{
				Name:   "ai-collective-seu",
				Seed:   1,
				Epochs: 24,
				Topology: TopoSpec{
					Pods: 4, Leaves: 4, Spines: 3, HostsPerLeaf: 4, LinkRateBps: 100e9,
				},
				Defs: map[string]Component{
					"group8": {
						Kind: KindAllReduce, Groups: 2, GroupSize: 8,
						RoundsPerEpoch: 1, FlowBits: 2e9,
					},
				},
				Workloads: []Component{
					{Ref: "group8"},
					{Kind: KindAllToAll, Groups: 2, GroupSize: 8, PeriodEpochs: 3, FlowBits: 8e9},
					{Kind: KindIncast, FanIn: 12, PeriodEpochs: 4, FlowBits: 1e9},
				},
				Environments: []Component{
					{
						Kind:    KindRadiation,
						SEURate: 0.02, SEUFraction: 0.35,
						BurstRate: 0.15, BurstSpan: 4, BurstEpochs: 3, BurstFraction: 0.5,
					},
				},
			},
		},
		{
			ID:    "E27",
			Title: "Flash-crowd diurnal load under thermal cycling and contamination",
			Claim: "diurnal user-facing load with a 4x flash crowd rides out a thermal-cycle capacity derate plus permanent connector contamination",
			Spec: Spec{
				Name:   "flash-diurnal-thermal",
				Seed:   1,
				Epochs: 24,
				Topology: TopoSpec{
					Pods: 3, Leaves: 4, Spines: 3, HostsPerLeaf: 4, LinkRateBps: 100e9,
				},
				Workloads: []Component{
					{
						Kind: KindDiurnal, PeakLoad: 2, MeanBits: 8e8,
						Flash: &FlashSpec{AtEpoch: 8, Epochs: 4, Mult: 4},
					},
					{Kind: KindStorage, WritesPerEpoch: 6, Fanout: 3, FlowBits: 4e9},
				},
				Environments: []Component{
					{Kind: KindThermal, BaseK: 300, SwingK: 60, PeriodEpochs: 12, MarginDB: 3},
					{Kind: KindContamination, AtEpoch: 10, Links: 6, Span: 4, Fraction: 0.45},
				},
			},
		},
	}
}

// Lookup resolves a scenario by experiment ID ("E26") or spec name
// ("ai-collective-seu").
func Lookup(name string) (LibraryEntry, bool) {
	for _, e := range Library() {
		if e.ID == name || e.Spec.Name == name {
			return e, true
		}
	}
	return LibraryEntry{}, false
}
