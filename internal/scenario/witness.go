package scenario

import (
	"math"
	"math/rand"

	"mosaic/internal/faultinject"
)

// Witness maps a scenario's environment models down to one link's
// fault schedule (internal/faultinject), so mosaicfleetd and linksoak
// can run a scenario's hostile environment at link level — the fleet-
// scale per-epoch capacity model and the link-scale per-superframe
// channel model are two views of the same spec:
//
//   - radiation: each superframe Bernoulli(seu_rate) draws a one-
//     superframe high-BER burst on a random channel, and
//     Bernoulli(burst_rate) draws a correlated upset spanning
//     burst_span adjacent channels.
//   - thermal: the cycle's peak power penalty becomes an aging ramp —
//     BER rises toward 1e-6·10^penaltyDB over a quarter of the horizon,
//     re-issued each cycle on a rotating channel.
//   - contamination: at the proportional superframe, links/4 (min 1)
//     correlated events each take out span adjacent channels for good.
//
// Events draw from streams seeded by seed × component content, so the
// schedule is deterministic and independent of spec array order. The
// returned schedule is sorted and validated.
func Witness(spec Spec, channels, superframes int, seed int64) (faultinject.Schedule, error) {
	if err := spec.Validate(); err != nil {
		return faultinject.Schedule{}, err
	}
	es, err := spec.resolve(spec.Environments, "environment")
	if err != nil {
		return faultinject.Schedule{}, err
	}
	sched := faultinject.Schedule{Seed: seed}
	for _, r := range es {
		rng := rand.New(rand.NewSource(seed ^ r.seed))
		sched.Events = append(sched.Events, witnessEvents(r, rng, channels, superframes, spec.Epochs)...)
	}
	sched.Sort()
	if err := sched.Validate(); err != nil {
		return faultinject.Schedule{}, err
	}
	return sched, nil
}

func witnessEvents(r resolved, rng *rand.Rand, channels, superframes, epochs int) []faultinject.Event {
	c := r.comp
	var out []faultinject.Event
	span := func(want int) int {
		if want > channels {
			return channels
		}
		return want
	}
	switch c.Kind {
	case KindRadiation:
		for sf := 0; sf < superframes; sf++ {
			if c.SEURate > 0 && rng.Float64() < c.SEURate {
				out = append(out, faultinject.Event{
					At: sf, Kind: faultinject.KindBurst,
					Channel: rng.Intn(channels), BER: 1e-3, Duration: 1,
				})
			}
			if c.BurstRate > 0 && rng.Float64() < c.BurstRate {
				s := span(c.BurstSpan)
				out = append(out, faultinject.Event{
					At: sf, Kind: faultinject.KindCorrelated,
					Channel: rng.Intn(channels - s + 1), Span: s,
				})
			}
		}
	case KindThermal:
		// Peak penalty over the cycle sets the aging BER target.
		led, iNom := thermalLED()
		peakT := c.BaseK + c.SwingK
		ber := 1e-6 * math.Pow(10, led.PowerPenaltyDB(iNom, peakT))
		if ber > 0.5 {
			ber = 0.5
		}
		if ber < 1e-6 {
			ber = 1e-6
		}
		ramp := superframes / 4
		if ramp < 1 {
			ramp = 1
		}
		cycles := (epochs + c.PeriodEpochs - 1) / c.PeriodEpochs
		if cycles > 8 {
			cycles = 8
		}
		for k := 0; k < cycles; k++ {
			out = append(out, faultinject.Event{
				At: k * superframes / cycles, Kind: faultinject.KindAging,
				Channel: rng.Intn(channels), BER: ber, Duration: ramp,
			})
		}
	case KindContamination:
		at := int(float64(c.AtEpoch) / float64(epochs) * float64(superframes))
		if at >= superframes {
			at = superframes - 1
		}
		n := c.Links / 4
		if n < 1 {
			n = 1
		}
		for k := 0; k < n; k++ {
			s := span(c.Span)
			out = append(out, faultinject.Event{
				At: at, Kind: faultinject.KindCorrelated,
				Channel: rng.Intn(channels - s + 1), Span: s,
			})
		}
	}
	return out
}
