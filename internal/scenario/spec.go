// Package scenario is the composable scenario layer (ROADMAP item 4): a
// scenario is a JSON-described workload mix (AI-collective all-reduce
// and all-to-all, incast, storage replication fan-out, diurnal
// user-facing load with flash crowds) crossed with an environment model
// (radiation SEU/burst upsets, thermal cycling coupled through the
// photonics temperature model, connector contamination as correlated
// multi-channel degradation), run over the sharded fleet flow engine
// (netsim.FleetSim).
//
// A Spec is pure data: schema-validated JSON naming a topology, a seed,
// and two lists of components. Components compose by value, not by
// position — before a run they are resolved (named defs, cycle-checked)
// and canonically ordered by content, and every component derives its
// RNG stream from the spec seed and its own canonical encoding. Two
// specs that list the same components in different array orders
// therefore produce byte-identical event logs (pinned by the 50-
// iteration composition-order regression test).
//
// Every scenario in Library() registers automatically as an experiment
// (internal/experiments), runs live inside mosaicfleetd (a `scenario`
// field on link-create swaps the link's fault schedule for the
// scenario's witness schedule), and is covered by the conformance
// harness: worker-count-invariant event logs, flow conservation and
// max-min throughout, and injected fault counts matching the schedule's
// closed-form expectation.
package scenario

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"regexp"
	"sort"
	"strings"
)

// Schema bounds. Validation rejects anything outside them, so a fuzzed
// or hostile spec cannot ask the engine for an absurd amount of work.
const (
	MaxEpochs     = 2000
	MaxDefs       = 32
	MaxComponents = 16
	MaxRefDepth   = 16
	maxLinks      = 50000
)

// Workload component kinds.
const (
	KindAllReduce = "allreduce" // ring all-reduce rounds inside fixed groups
	KindAllToAll  = "alltoall"  // periodic full-mesh exchange inside groups
	KindIncast    = "incast"    // periodic fan-in burst onto one receiver
	KindStorage   = "storage"   // replication fan-out writes
	KindDiurnal   = "diurnal"   // diurnal user-facing load, optional flash crowd
)

// Environment component kinds.
const (
	KindRadiation     = "radiation"     // SEU dips + correlated burst upsets
	KindThermal       = "thermal"       // case-temperature cycling via photonics
	KindContamination = "contamination" // permanent correlated multi-channel loss
)

var workloadKinds = map[string]bool{
	KindAllReduce: true, KindAllToAll: true, KindIncast: true,
	KindStorage: true, KindDiurnal: true,
}

var environmentKinds = map[string]bool{
	KindRadiation: true, KindThermal: true, KindContamination: true,
}

// TopoSpec sizes the fleet topology the scenario runs over (see
// netsim.NewFleet): Pods leaf-spine pods joined by Spines cores.
type TopoSpec struct {
	Pods         int     `json:"pods"`
	Leaves       int     `json:"leaves"`
	Spines       int     `json:"spines"`
	HostsPerLeaf int     `json:"hosts_per_leaf"`
	LinkRateBps  float64 `json:"link_rate_bps"`
}

// Hosts returns the host count the topology will have.
func (t TopoSpec) Hosts() int { return t.Pods * t.Leaves * t.HostsPerLeaf }

// Links returns the link count the topology will have (host links +
// leaf-spine bipartite + spine-core uplinks).
func (t TopoSpec) Links() int {
	perPod := t.Leaves*t.HostsPerLeaf + t.Leaves*t.Spines + t.Spines
	return t.Pods * perPod
}

// Validate bounds the topology.
func (t TopoSpec) Validate() error {
	switch {
	case t.Pods < 1 || t.Pods > 32:
		return fmt.Errorf("scenario: topology pods %d outside [1,32]", t.Pods)
	case t.Leaves < 1 || t.Leaves > 64:
		return fmt.Errorf("scenario: topology leaves %d outside [1,64]", t.Leaves)
	case t.Spines < 1 || t.Spines > 64:
		return fmt.Errorf("scenario: topology spines %d outside [1,64]", t.Spines)
	case t.HostsPerLeaf < 1 || t.HostsPerLeaf > 64:
		return fmt.Errorf("scenario: topology hosts_per_leaf %d outside [1,64]", t.HostsPerLeaf)
	case t.LinkRateBps <= 0 || t.LinkRateBps > 1e13 || t.LinkRateBps != t.LinkRateBps:
		return fmt.Errorf("scenario: topology link_rate_bps %g outside (0,1e13]", t.LinkRateBps)
	case t.Hosts() < 2:
		return errors.New("scenario: topology needs at least 2 hosts")
	case t.Links() > maxLinks:
		return fmt.Errorf("scenario: topology has %d links, max %d", t.Links(), maxLinks)
	}
	return nil
}

// FlashSpec is a diurnal workload's flash crowd: load multiplied by
// Mult for Epochs epochs starting at AtEpoch.
type FlashSpec struct {
	AtEpoch int     `json:"at_epoch"`
	Epochs  int     `json:"epochs"`
	Mult    float64 `json:"mult"`
}

// Component is one workload or environment, or a reference to a named
// definition in Spec.Defs. A reference carries only Ref; a concrete
// component carries Kind plus the fields its kind uses (the struct is a
// union — unused fields must stay zero, enforced by Validate through
// the canonical encoding).
type Component struct {
	Ref  string `json:"ref,omitempty"`
	Kind string `json:"kind,omitempty"`

	// Collective workloads (allreduce, alltoall, incast).
	Groups         int     `json:"groups,omitempty"`
	GroupSize      int     `json:"group_size,omitempty"`
	RoundsPerEpoch int     `json:"rounds_per_epoch,omitempty"`
	PeriodEpochs   int     `json:"period_epochs,omitempty"` // alltoall/incast cadence; thermal cycle length
	FanIn          int     `json:"fan_in,omitempty"`
	FlowBits       float64 `json:"flow_bits,omitempty"`

	// Storage replication.
	WritesPerEpoch int `json:"writes_per_epoch,omitempty"`
	Fanout         int `json:"fanout,omitempty"`

	// Diurnal load.
	PeakLoad float64    `json:"peak_load,omitempty"`
	MeanBits float64    `json:"mean_bits,omitempty"`
	Flash    *FlashSpec `json:"flash,omitempty"`

	// Radiation environment.
	SEURate       float64 `json:"seu_rate,omitempty"`     // per-link per-epoch transient upset probability
	SEUFraction   float64 `json:"seu_fraction,omitempty"` // capacity fraction during an SEU epoch
	BurstRate     float64 `json:"burst_rate,omitempty"`   // per-epoch correlated burst-upset probability
	BurstSpan     int     `json:"burst_span,omitempty"`   // adjacent links a burst takes down
	BurstEpochs   int     `json:"burst_epochs,omitempty"` // burst duration
	BurstFraction float64 `json:"burst_fraction,omitempty"`

	// Thermal environment.
	BaseK    float64 `json:"base_k,omitempty"`
	SwingK   float64 `json:"swing_k,omitempty"`
	MarginDB float64 `json:"margin_db,omitempty"` // optical margin the penalty eats into

	// Contamination environment.
	AtEpoch  int     `json:"at_epoch,omitempty"`
	Links    int     `json:"links,omitempty"`
	Span     int     `json:"span,omitempty"` // channels lost per contaminated connector
	Fraction float64 `json:"fraction,omitempty"`
}

// frac01 reports v in the open-closed interval (0,1) suitable for a
// capacity fraction (NaN rejected).
func frac01(v float64) bool { return v > 0 && v < 1 }

// prob reports v a probability in [0, max].
func prob(v, max float64) bool { return v >= 0 && v <= max }

// validateResolved checks a concrete (Ref already resolved away)
// component for the given role ("workload" or "environment").
func (c Component) validateResolved(role string) error {
	if c.Ref != "" {
		return fmt.Errorf("scenario: unresolved ref %q", c.Ref)
	}
	switch role {
	case "workload":
		if !workloadKinds[c.Kind] {
			return fmt.Errorf("scenario: %q is not a workload kind", c.Kind)
		}
	case "environment":
		if !environmentKinds[c.Kind] {
			return fmt.Errorf("scenario: %q is not an environment kind", c.Kind)
		}
	default:
		return fmt.Errorf("scenario: unknown role %q", role)
	}

	switch c.Kind {
	case KindAllReduce:
		switch {
		case c.Groups < 1 || c.Groups > 64:
			return fmt.Errorf("scenario: allreduce groups %d outside [1,64]", c.Groups)
		case c.GroupSize < 2 || c.GroupSize > 64:
			return fmt.Errorf("scenario: allreduce group_size %d outside [2,64]", c.GroupSize)
		case c.RoundsPerEpoch < 1 || c.RoundsPerEpoch > 64:
			return fmt.Errorf("scenario: allreduce rounds_per_epoch %d outside [1,64]", c.RoundsPerEpoch)
		case c.FlowBits <= 0 || c.FlowBits > 1e14:
			return fmt.Errorf("scenario: allreduce flow_bits %g outside (0,1e14]", c.FlowBits)
		}
	case KindAllToAll:
		switch {
		case c.Groups < 1 || c.Groups > 64:
			return fmt.Errorf("scenario: alltoall groups %d outside [1,64]", c.Groups)
		case c.GroupSize < 2 || c.GroupSize > 32:
			return fmt.Errorf("scenario: alltoall group_size %d outside [2,32]", c.GroupSize)
		case c.PeriodEpochs < 1 || c.PeriodEpochs > 1000:
			return fmt.Errorf("scenario: alltoall period_epochs %d outside [1,1000]", c.PeriodEpochs)
		case c.FlowBits <= 0 || c.FlowBits > 1e14:
			return fmt.Errorf("scenario: alltoall flow_bits %g outside (0,1e14]", c.FlowBits)
		}
	case KindIncast:
		switch {
		case c.FanIn < 2 || c.FanIn > 256:
			return fmt.Errorf("scenario: incast fan_in %d outside [2,256]", c.FanIn)
		case c.PeriodEpochs < 1 || c.PeriodEpochs > 1000:
			return fmt.Errorf("scenario: incast period_epochs %d outside [1,1000]", c.PeriodEpochs)
		case c.FlowBits <= 0 || c.FlowBits > 1e14:
			return fmt.Errorf("scenario: incast flow_bits %g outside (0,1e14]", c.FlowBits)
		}
	case KindStorage:
		switch {
		case c.WritesPerEpoch < 1 || c.WritesPerEpoch > 1024:
			return fmt.Errorf("scenario: storage writes_per_epoch %d outside [1,1024]", c.WritesPerEpoch)
		case c.Fanout < 1 || c.Fanout > 16:
			return fmt.Errorf("scenario: storage fanout %d outside [1,16]", c.Fanout)
		case c.FlowBits <= 0 || c.FlowBits > 1e14:
			return fmt.Errorf("scenario: storage flow_bits %g outside (0,1e14]", c.FlowBits)
		}
	case KindDiurnal:
		switch {
		case c.PeakLoad <= 0 || c.PeakLoad > 4:
			return fmt.Errorf("scenario: diurnal peak_load %g outside (0,4]", c.PeakLoad)
		case c.MeanBits < 1e6 || c.MeanBits > 1e12:
			return fmt.Errorf("scenario: diurnal mean_bits %g outside [1e6,1e12]", c.MeanBits)
		}
		if f := c.Flash; f != nil {
			switch {
			case f.AtEpoch < 0 || f.AtEpoch > MaxEpochs:
				return fmt.Errorf("scenario: flash at_epoch %d outside [0,%d]", f.AtEpoch, MaxEpochs)
			case f.Epochs < 1 || f.Epochs > MaxEpochs:
				return fmt.Errorf("scenario: flash epochs %d outside [1,%d]", f.Epochs, MaxEpochs)
			case f.Mult < 1 || f.Mult > 16:
				return fmt.Errorf("scenario: flash mult %g outside [1,16]", f.Mult)
			}
		}
	case KindRadiation:
		switch {
		case !prob(c.SEURate, 0.5):
			return fmt.Errorf("scenario: radiation seu_rate %g outside [0,0.5]", c.SEURate)
		case !prob(c.BurstRate, 0.5):
			return fmt.Errorf("scenario: radiation burst_rate %g outside [0,0.5]", c.BurstRate)
		case c.SEURate == 0 && c.BurstRate == 0:
			return errors.New("scenario: radiation needs seu_rate > 0 or burst_rate > 0")
		}
		if c.SEURate > 0 && !frac01(c.SEUFraction) {
			return fmt.Errorf("scenario: radiation seu_fraction %g outside (0,1)", c.SEUFraction)
		}
		if c.BurstRate > 0 {
			switch {
			case c.BurstSpan < 1 || c.BurstSpan > 16:
				return fmt.Errorf("scenario: radiation burst_span %d outside [1,16]", c.BurstSpan)
			case c.BurstEpochs < 1 || c.BurstEpochs > 64:
				return fmt.Errorf("scenario: radiation burst_epochs %d outside [1,64]", c.BurstEpochs)
			case !frac01(c.BurstFraction):
				return fmt.Errorf("scenario: radiation burst_fraction %g outside (0,1)", c.BurstFraction)
			}
		}
	case KindThermal:
		switch {
		case c.BaseK < 250 || c.BaseK > 400:
			return fmt.Errorf("scenario: thermal base_k %g outside [250,400]", c.BaseK)
		case c.SwingK <= 0 || c.SwingK > 150:
			return fmt.Errorf("scenario: thermal swing_k %g outside (0,150]", c.SwingK)
		case c.PeriodEpochs < 1 || c.PeriodEpochs > 1000:
			return fmt.Errorf("scenario: thermal period_epochs %d outside [1,1000]", c.PeriodEpochs)
		case c.MarginDB <= 0 || c.MarginDB > 20:
			return fmt.Errorf("scenario: thermal margin_db %g outside (0,20]", c.MarginDB)
		}
	case KindContamination:
		switch {
		case c.AtEpoch < 0 || c.AtEpoch > MaxEpochs:
			return fmt.Errorf("scenario: contamination at_epoch %d outside [0,%d]", c.AtEpoch, MaxEpochs)
		case c.Links < 1 || c.Links > 64:
			return fmt.Errorf("scenario: contamination links %d outside [1,64]", c.Links)
		case c.Span < 1 || c.Span > 16:
			return fmt.Errorf("scenario: contamination span %d outside [1,16]", c.Span)
		case !frac01(c.Fraction):
			return fmt.Errorf("scenario: contamination fraction %g outside (0,1)", c.Fraction)
		}
	}
	return nil
}

// Spec is one scenario: workloads × environments × topology × seed.
type Spec struct {
	Name         string               `json:"name"`
	Seed         int64                `json:"seed"`
	Epochs       int                  `json:"epochs"`
	WindowEpochs int                  `json:"window_epochs,omitempty"` // table row granularity (0 = epochs/6)
	Topology     TopoSpec             `json:"topology"`
	Defs         map[string]Component `json:"defs,omitempty"` // named reusable components
	Workloads    []Component          `json:"workloads"`
	Environments []Component          `json:"environments,omitempty"`
}

var nameRE = regexp.MustCompile(`^[a-z0-9][a-z0-9-]{0,63}$`)
var defNameRE = regexp.MustCompile(`^[A-Za-z0-9_-]{1,32}$`)

// resolveComponent follows refs through Defs, rejecting unknown names,
// cycles, and over-deep chains. A ref must be pure: a component naming
// Ref may set nothing else.
func (s *Spec) resolveComponent(c Component, depth int, trail []string) (Component, error) {
	if c.Ref == "" {
		return c, nil
	}
	pure := Component{Ref: c.Ref}
	if c != pure {
		return Component{}, fmt.Errorf("scenario: ref %q must not carry other fields", c.Ref)
	}
	if depth >= MaxRefDepth {
		return Component{}, fmt.Errorf("scenario: ref chain too deep at %q", c.Ref)
	}
	for _, seen := range trail {
		if seen == c.Ref {
			return Component{}, fmt.Errorf("scenario: cyclic ref %q (via %s)", c.Ref, strings.Join(trail, " -> "))
		}
	}
	next, ok := s.Defs[c.Ref]
	if !ok {
		return Component{}, fmt.Errorf("scenario: unknown ref %q", c.Ref)
	}
	return s.resolveComponent(next, depth+1, append(trail, c.Ref))
}

// resolved is a concrete component plus its content-derived identity:
// the canonical JSON encoding, the display name (kind#hash), and the
// seed its RNG stream starts from. Identity depends only on content —
// never on array position — which is what makes composition
// order-invariant.
type resolved struct {
	comp  Component
	canon string
	name  string
	seed  int64
}

func (s *Spec) resolve(list []Component, role string) ([]resolved, error) {
	out := make([]resolved, 0, len(list))
	for i, c := range list {
		rc, err := s.resolveComponent(c, 0, nil)
		if err != nil {
			return nil, fmt.Errorf("%s %d: %w", role, i, err)
		}
		if err := rc.validateResolved(role); err != nil {
			return nil, fmt.Errorf("%s %d: %w", role, i, err)
		}
		b, err := json.Marshal(rc)
		if err != nil {
			return nil, err
		}
		h := fnv.New64a()
		h.Write(b)
		sum := h.Sum64()
		out = append(out, resolved{
			comp:  rc,
			canon: string(b),
			name:  fmt.Sprintf("%s#%04x", rc.Kind, sum&0xffff),
			seed:  s.Seed ^ int64(sum&0x7fffffffffffffff),
		})
	}
	// Canonical order: by kind, then canonical encoding. Stable, so
	// duplicate components (same content, same RNG stream) both survive.
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].comp.Kind != out[j].comp.Kind {
			return out[i].comp.Kind < out[j].comp.Kind
		}
		return out[i].canon < out[j].canon
	})
	return out, nil
}

// Validate checks the whole spec: bounds, ref resolution (including
// cycles through unreferenced defs), kind-level parameter ranges, and
// the cross-field feasibility of workloads against the topology.
func (s *Spec) Validate() error {
	if !nameRE.MatchString(s.Name) {
		return fmt.Errorf("scenario: bad name %q (want lowercase [a-z0-9-], <= 64 chars)", s.Name)
	}
	if s.Epochs < 1 || s.Epochs > MaxEpochs {
		return fmt.Errorf("scenario: epochs %d outside [1,%d]", s.Epochs, MaxEpochs)
	}
	if s.WindowEpochs < 0 || s.WindowEpochs > s.Epochs {
		return fmt.Errorf("scenario: window_epochs %d outside [0,%d]", s.WindowEpochs, s.Epochs)
	}
	if err := s.Topology.Validate(); err != nil {
		return err
	}
	if len(s.Defs) > MaxDefs {
		return fmt.Errorf("scenario: %d defs, max %d", len(s.Defs), MaxDefs)
	}
	for name := range s.Defs {
		if !defNameRE.MatchString(name) {
			return fmt.Errorf("scenario: bad def name %q", name)
		}
	}
	// Every def must resolve without a cycle even if nothing references
	// it yet — a latent cycle is a spec bug, not a runtime surprise.
	names := make([]string, 0, len(s.Defs))
	for name := range s.Defs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := s.resolveComponent(Component{Ref: name}, 0, nil); err != nil {
			return fmt.Errorf("def %q: %w", name, err)
		}
	}
	if len(s.Workloads) < 1 || len(s.Workloads) > MaxComponents {
		return fmt.Errorf("scenario: %d workloads outside [1,%d]", len(s.Workloads), MaxComponents)
	}
	if len(s.Environments) > MaxComponents {
		return fmt.Errorf("scenario: %d environments, max %d", len(s.Environments), MaxComponents)
	}
	ws, err := s.resolve(s.Workloads, "workload")
	if err != nil {
		return err
	}
	if _, err := s.resolve(s.Environments, "environment"); err != nil {
		return err
	}

	// Cross-field feasibility against the topology.
	hosts := s.Topology.Hosts()
	for _, w := range ws {
		c := w.comp
		switch c.Kind {
		case KindAllReduce, KindAllToAll:
			if c.Groups*c.GroupSize > hosts {
				return fmt.Errorf("scenario: %s needs %d hosts, topology has %d",
					c.Kind, c.Groups*c.GroupSize, hosts)
			}
		case KindIncast:
			if c.FanIn+1 > hosts {
				return fmt.Errorf("scenario: incast fan_in %d needs %d hosts, topology has %d",
					c.FanIn, c.FanIn+1, hosts)
			}
		case KindStorage:
			if c.Fanout+1 > hosts {
				return fmt.Errorf("scenario: storage fanout %d needs %d hosts, topology has %d",
					c.Fanout, c.Fanout+1, hosts)
			}
		}
	}
	return nil
}

// windowEpochs returns the effective table-row granularity.
func (s *Spec) windowEpochs() int {
	if s.WindowEpochs > 0 {
		return s.WindowEpochs
	}
	w := s.Epochs / 6
	if w < 1 {
		w = 1
	}
	return w
}

// Decode parses a JSON spec (unknown fields rejected) and validates it.
func Decode(r io.Reader) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("scenario: parse spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// Parse parses a JSON spec from bytes.
func Parse(data []byte) (Spec, error) { return Decode(strings.NewReader(string(data))) }

// LoadFile reads a JSON spec from disk.
func LoadFile(path string) (Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return Spec{}, err
	}
	defer f.Close()
	return Decode(f)
}

// Encode writes the spec as indented JSON.
func (s Spec) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
