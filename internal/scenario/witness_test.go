package scenario

import (
	"testing"

	"mosaic/internal/faultinject"
)

// Every library scenario's witness schedule must be a valid, sorted
// faultinject schedule, reproducible for a seed, different across
// seeds, and independent of spec array order.
func TestWitnessSchedules(t *testing.T) {
	const channels, superframes = 10, 256
	for _, e := range Library() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			s1, err := Witness(e.Spec, channels, superframes, 42)
			if err != nil {
				t.Fatal(err)
			}
			if err := s1.Validate(); err != nil {
				t.Fatal(err)
			}
			if len(s1.Events) == 0 {
				t.Fatal("witness schedule is empty — the environment never reaches the link")
			}
			for _, ev := range s1.Events {
				if ev.At >= superframes {
					t.Fatalf("event beyond horizon: %v", ev)
				}
				if ev.Channel+max(ev.Span, 1) > channels {
					t.Fatalf("event spills past channel count: %v", ev)
				}
			}

			s2, err := Witness(e.Spec, channels, superframes, 42)
			if err != nil {
				t.Fatal(err)
			}
			if renderSched(s1) != renderSched(s2) {
				t.Fatal("witness schedule not reproducible for the same seed")
			}
			s3, err := Witness(e.Spec, channels, superframes, 43)
			if err != nil {
				t.Fatal(err)
			}
			if renderSched(s1) == renderSched(s3) {
				t.Fatal("witness schedule identical across different seeds")
			}
		})
	}
}

// Witness must survive a shuffled environment list unchanged.
func TestWitnessOrderInvariant(t *testing.T) {
	spec := Library()[1].Spec // E27: two environments
	ref, err := Witness(spec, 10, 256, 7)
	if err != nil {
		t.Fatal(err)
	}
	swapped := spec
	swapped.Environments = []Component{spec.Environments[1], spec.Environments[0]}
	got, err := Witness(swapped, 10, 256, 7)
	if err != nil {
		t.Fatal(err)
	}
	if renderSched(ref) != renderSched(got) {
		t.Fatal("witness schedule depends on environment array order")
	}
}

func renderSched(s faultinject.Schedule) string {
	out := ""
	for _, e := range s.Events {
		out += e.String() + "\n"
	}
	return out
}
