package scenario

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"mosaic/internal/photonics"
)

// An environment model runs alongside the workloads: every epoch it
// multiplies per-link capacity fractions into the epoch's fraction
// vector (reset to 1 each epoch, so transient effects decay naturally
// and persistent effects are re-applied from runner state), counts the
// fault events it injected, and appends deterministic log lines. Each
// runner also knows the closed-form expectation of its total event
// count, which the conformance harness checks the actual count against.
type envRunner interface {
	name() string
	// apply folds this epoch's degradation into mult (len == links) and
	// returns the number of fault events injected this epoch.
	apply(e int, mult []float64, logf func(format string, args ...any)) int
	// expect returns the closed-form mean and standard deviation of the
	// total event count over the whole run.
	expect() Expectation
}

// Expectation is the closed-form distribution of an environment's total
// injected-event count over a run: exact (Sigma == 0) for deterministic
// environments, Binomial mean/sigma for Bernoulli-driven ones.
type Expectation struct {
	Name  string  `json:"name"`
	Mean  float64 `json:"mean"`
	Sigma float64 `json:"sigma"`
}

// thermalLED is the device the thermal environment couples through:
// the default paper-class microLED at its nominal drive current.
func thermalLED() (photonics.MicroLED, float64) {
	led := photonics.DefaultMicroLED()
	return led, led.NominalCurrent()
}

// newEnvRunner builds the runner for a resolved environment component.
// The runner's RNG stream is seeded purely from spec seed × component
// content (resolved.seed), so composition order cannot perturb draws.
func newEnvRunner(r resolved, topo TopoSpec, epochs int) envRunner {
	rng := rand.New(rand.NewSource(r.seed))
	links := topo.Links()
	switch r.comp.Kind {
	case KindRadiation:
		return &radiationEnv{
			id: r.name, rng: rng, links: links, epochs: epochs,
			p: r.comp.SEURate, seuFrac: r.comp.SEUFraction,
			q: r.comp.BurstRate, span: r.comp.BurstSpan,
			burstEpochs: r.comp.BurstEpochs, burstFrac: r.comp.BurstFraction,
		}
	case KindThermal:
		led, iNom := thermalLED()
		return &thermalEnv{
			id: r.name, links: links, epochs: epochs,
			led: led, iNom: iNom,
			base: r.comp.BaseK, swing: r.comp.SwingK,
			period: r.comp.PeriodEpochs, margin: r.comp.MarginDB,
		}
	case KindContamination:
		// Choose the contaminated links up front from the component's
		// own stream; sorted so the log order is canonical.
		n := r.comp.Links
		if n > links {
			n = links
		}
		perm := rng.Perm(links)
		chosen := append([]int(nil), perm[:n]...)
		sort.Ints(chosen)
		return &contaminationEnv{
			id: r.name, epochs: epochs, at: r.comp.AtEpoch,
			chosen: chosen, frac: r.comp.Fraction,
		}
	}
	panic(fmt.Sprintf("scenario: no runner for environment kind %q", r.comp.Kind))
}

// radiationEnv models single-event upsets (independent per-link
// per-epoch Bernoulli transients that dip a link to seuFrac for one
// epoch) and correlated burst upsets (a per-epoch Bernoulli event that
// drops a contiguous run of span links to burstFrac for burstEpochs
// epochs — the multi-lane neighborhoods a heavy-ion strike or power
// transient takes out together). Event count = SEU firings + burst
// firings, so the total is a sum of independent Bernoullis with an
// exact Binomial expectation.
type radiationEnv struct {
	id          string
	rng         *rand.Rand
	links       int
	epochs      int
	p, seuFrac  float64
	q           float64
	span        int
	burstEpochs int
	burstFrac   float64

	bursts []radBurst
}

type radBurst struct {
	first, span int
	until       int // exclusive epoch bound
}

func (r *radiationEnv) name() string { return r.id }

func (r *radiationEnv) apply(e int, mult []float64, logf func(string, ...any)) int {
	events := 0
	// Persistent effect of bursts still in flight.
	live := r.bursts[:0]
	for _, b := range r.bursts {
		if e >= b.until {
			continue
		}
		live = append(live, b)
		for l := b.first; l < b.first+b.span; l++ {
			mult[l] *= r.burstFrac
		}
	}
	r.bursts = live

	// Transient SEUs: one draw per link per epoch, ascending link order.
	if r.p > 0 {
		for l := 0; l < r.links; l++ {
			if r.rng.Float64() < r.p {
				mult[l] *= r.seuFrac
				events++
				logf("epoch=%d env=%s seu link=%d frac=%.3f", e, r.id, l, r.seuFrac)
			}
		}
	}

	// Correlated burst: one draw per epoch, plus a placement draw only
	// when it fires.
	if r.q > 0 && r.rng.Float64() < r.q {
		span := r.span
		if span > r.links {
			span = r.links
		}
		first := r.rng.Intn(r.links - span + 1)
		r.bursts = append(r.bursts, radBurst{first: first, span: span, until: e + r.burstEpochs})
		for l := first; l < first+span; l++ {
			mult[l] *= r.burstFrac
		}
		events++
		logf("epoch=%d env=%s burst links=[%d,%d) epochs=%d frac=%.3f",
			e, r.id, first, first+span, r.burstEpochs, r.burstFrac)
	}
	return events
}

func (r *radiationEnv) expect() Expectation {
	// Total = Binomial(epochs*links, p) + Binomial(epochs, q).
	n := float64(r.epochs)
	l := float64(r.links)
	mean := n*l*r.p + n*r.q
	varSum := n*l*r.p*(1-r.p) + n*r.q*(1-r.q)
	return Expectation{Name: r.id, Mean: mean, Sigma: math.Sqrt(varSum)}
}

// thermalEnv couples case-temperature cycling through the photonics
// temperature model: T(e) sweeps a raised cosine between base and
// base+swing with the given period, the microLED's optical power
// penalty at the nominal drive current is evaluated at T(e), and the
// penalty eats linearly into the link's optical margin — capacity
// fraction 1 - penalty/margin (floored at 0.05). Every epoch whose
// fraction dips below 1 counts as one derate event; the trajectory is
// fully deterministic, so the expectation is exact (sigma 0).
type thermalEnv struct {
	id     string
	links  int
	epochs int
	led    photonics.MicroLED
	iNom   float64
	base   float64
	swing  float64
	period int
	margin float64
}

func (t *thermalEnv) name() string { return t.id }

// fractionAt returns the capacity fraction the model applies at epoch e.
func (t *thermalEnv) fractionAt(e int) float64 {
	tempK := t.base + t.swing*(1-math.Cos(2*math.Pi*float64(e)/float64(t.period)))/2
	pen := t.led.PowerPenaltyDB(t.iNom, tempK)
	f := 1 - pen/t.margin
	if f < 0.05 {
		f = 0.05
	}
	if f > 1 {
		f = 1
	}
	return f
}

func (t *thermalEnv) apply(e int, mult []float64, logf func(string, ...any)) int {
	f := t.fractionAt(e)
	if f >= 1-1e-12 {
		return 0
	}
	for l := 0; l < t.links; l++ {
		mult[l] *= f
	}
	logf("epoch=%d env=%s derate frac=%.4f", e, t.id, f)
	return 1
}

func (t *thermalEnv) expect() Expectation {
	count := 0
	for e := 0; e < t.epochs; e++ {
		if t.fractionAt(e) < 1-1e-12 {
			count++
		}
	}
	return Expectation{Name: t.id, Mean: float64(count), Sigma: 0}
}

// contaminationEnv models connector contamination: at epoch `at`, a
// fixed set of links (chosen once from the component's seeded stream)
// permanently degrades to frac of nominal — correlated multi-channel
// loss that never heals. Exactly len(chosen) events fire, all at the
// contamination epoch, so the expectation is exact.
type contaminationEnv struct {
	id     string
	epochs int
	at     int
	chosen []int
	frac   float64
}

func (c *contaminationEnv) name() string { return c.id }

func (c *contaminationEnv) apply(e int, mult []float64, logf func(string, ...any)) int {
	if e < c.at {
		return 0
	}
	for _, l := range c.chosen {
		mult[l] *= c.frac
	}
	if e != c.at {
		return 0
	}
	for _, l := range c.chosen {
		logf("epoch=%d env=%s contaminated link=%d frac=%.3f", e, c.id, l, c.frac)
	}
	return len(c.chosen)
}

func (c *contaminationEnv) expect() Expectation {
	mean := 0.0
	if c.at < c.epochs {
		mean = float64(len(c.chosen))
	}
	return Expectation{Name: c.id, Mean: mean, Sigma: 0}
}
