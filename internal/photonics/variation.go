package photonics

import (
	"math"
	"math/rand"
)

// Variation describes device-to-device manufacturing spread across a
// microLED (or PD) array. Mosaic's 100+ channel arrays are fabricated as
// monolithic grids, so within-wafer variation is the dominant source of
// per-channel BER differences — this is what makes the per-channel BER
// distribution (experiment E5) non-degenerate.
type Variation struct {
	// EQESigma is the relative (lognormal) sigma of external quantum
	// efficiency across devices, e.g. 0.10 for 10%.
	EQESigma float64
	// BandwidthSigma is the relative sigma of modulation bandwidth.
	BandwidthSigma float64
	// RespSigma is the relative sigma of photodiode responsivity.
	RespSigma float64
	// DeadProb is the probability that a device is dead at manufacture
	// (infant mortality, screened but never perfectly).
	DeadProb float64
}

// DefaultVariation returns spreads typical of monolithic GaN micro-display
// style arrays.
func DefaultVariation() Variation {
	return Variation{
		EQESigma:       0.08,
		BandwidthSigma: 0.05,
		RespSigma:      0.03,
		DeadProb:       0.002,
	}
}

// ChannelSample holds the per-channel multiplicative factors drawn for one
// transmitter/receiver pair in an array.
type ChannelSample struct {
	EQEFactor       float64 // multiplies transmitter optical power
	BandwidthFactor float64 // multiplies transmitter bandwidth
	RespFactor      float64 // multiplies receiver responsivity
	Dead            bool    // true if the channel is unusable from day one
}

// lognormal draws a multiplicative factor with median 1 and the given
// relative sigma. sigma<=0 returns exactly 1.
func lognormal(rng *rand.Rand, sigma float64) float64 {
	if sigma <= 0 {
		return 1
	}
	return math.Exp(rng.NormFloat64() * sigma)
}

// Sample draws the variation factors for one channel using rng.
func (v Variation) Sample(rng *rand.Rand) ChannelSample {
	return ChannelSample{
		EQEFactor:       lognormal(rng, v.EQESigma),
		BandwidthFactor: lognormal(rng, v.BandwidthSigma),
		RespFactor:      lognormal(rng, v.RespSigma),
		Dead:            rng.Float64() < v.DeadProb,
	}
}

// SampleArray draws n independent channel samples.
func (v Variation) SampleArray(rng *rand.Rand, n int) []ChannelSample {
	out := make([]ChannelSample, n)
	for i := range out {
		out[i] = v.Sample(rng)
	}
	return out
}
