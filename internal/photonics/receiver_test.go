package photonics

import (
	"math"
	"math/rand"
	"testing"

	"mosaic/internal/units"
)

func TestPDCatalogValid(t *testing.T) {
	for _, pd := range []Photodiode{SiPD(), InGaAsPD(), GaAsPD()} {
		if err := pd.Validate(); err != nil {
			t.Errorf("%s: %v", pd.Name, err)
		}
	}
}

func TestResponsivityPhysical(t *testing.T) {
	for _, pd := range []Photodiode{SiPD(), InGaAsPD(), GaAsPD()} {
		for _, lambda := range []float64{400e-9, 650e-9, 850e-9, 1310e-9} {
			r := pd.Responsivity(lambda)
			if r < 0 {
				t.Errorf("%s: negative responsivity at %v", pd.Name, lambda)
			}
			// Quantum limit: R <= qλ/hc.
			limit := units.ElectronCharge / units.PhotonEnergy(lambda)
			if r > limit*(1+1e-9) {
				t.Errorf("%s: responsivity %v exceeds quantum limit %v at %v", pd.Name, r, limit, lambda)
			}
		}
	}
}

func TestResponsivityBandEdgeRollOff(t *testing.T) {
	pd := SiPD()
	atPeak := pd.Responsivity(pd.PeakWavelengthM)
	past := pd.Responsivity(pd.PeakWavelengthM * 1.25)
	if !(past < atPeak/2) {
		t.Errorf("responsivity should collapse past the band edge: peak=%v past=%v", atPeak, past)
	}
	if pd.Responsivity(0) != 0 || pd.Responsivity(-1) != 0 {
		t.Error("nonpositive wavelength should give 0")
	}
}

func TestSiPDAtBlue(t *testing.T) {
	// Si at 430 nm: roughly 0.2-0.3 A/W. This anchors the Mosaic budget.
	r := SiPD().Responsivity(430e-9)
	if r < 0.15 || r > 0.40 {
		t.Errorf("Si responsivity at 430nm = %v, want ~0.2-0.3", r)
	}
}

func TestPhotocurrent(t *testing.T) {
	pd := SiPD()
	i := pd.Photocurrent(10e-6, 430e-9)
	want := pd.Responsivity(430e-9)*10e-6 + pd.DarkCurrentA
	if !units.ApproxEqual(i, want, 1e-12) {
		t.Errorf("photocurrent = %v, want %v", i, want)
	}
	if got := pd.Photocurrent(-5, 430e-9); got != pd.DarkCurrentA {
		t.Errorf("negative power should clamp to dark current, got %v", got)
	}
}

func TestTIAValidation(t *testing.T) {
	for _, a := range []TIA{SimpleTIA(), HighSpeedTIA()} {
		if err := a.Validate(); err != nil {
			t.Errorf("%s: %v", a.Name, err)
		}
	}
	bad := SimpleTIA()
	bad.GainOhm = 0
	if err := bad.Validate(); err == nil {
		t.Error("accepted zero gain")
	}
}

func TestTIANoiseIntegration(t *testing.T) {
	a := SimpleTIA()
	n1 := a.InputNoiseCurrentSq(1e9)
	n2 := a.InputNoiseCurrentSq(2e9)
	if !units.ApproxEqual(n2, 2*n1, 1e-9) {
		t.Errorf("noise should integrate linearly in bandwidth: %v vs %v", n1, n2)
	}
	// Capped at the TIA's own bandwidth.
	nc := a.InputNoiseCurrentSq(100e9)
	nb := a.InputNoiseCurrentSq(a.BandwidthHz)
	if nc != nb {
		t.Error("noise integration should cap at TIA bandwidth")
	}
	if a.InputNoiseCurrentSq(-1) != 0 {
		t.Error("negative bandwidth should give 0")
	}
}

func TestMosaicReceiverBudget(t *testing.T) {
	rx := MosaicReceiver()
	if err := rx.Validate(); err != nil {
		t.Fatal(err)
	}
	// Receiver bandwidth must clear 2 Gbps NRZ (~1.4 GHz needed).
	if bw := rx.Bandwidth(); bw < 1.4e9 {
		t.Errorf("Mosaic receiver bandwidth %v too low for 2 Gbps", bw)
	}
	// Sensitivity: with ~1 uA of signal swing the SNR should be huge.
	sigma := rx.NoiseCurrentSigma(1e-6, 1.4e9)
	if q := 1e-6 / (2 * sigma); q < 6 {
		t.Errorf("Q with 1uA swing = %v; receiver too noisy", q)
	}
}

func TestNoiseSigmaGrowsWithCurrent(t *testing.T) {
	rx := MosaicReceiver()
	s0 := rx.NoiseCurrentSigma(0, 1e9)
	s1 := rx.NoiseCurrentSigma(1e-3, 1e9)
	if !(s1 > s0) {
		t.Error("shot noise should grow with photocurrent")
	}
	if s0 <= 0 {
		t.Error("thermal noise floor should be positive")
	}
}

func TestVariationSampleStats(t *testing.T) {
	v := DefaultVariation()
	rng := rand.New(rand.NewSource(42))
	n := 20000
	var sum, sumsq float64
	dead := 0
	for i := 0; i < n; i++ {
		s := v.Sample(rng)
		sum += math.Log(s.EQEFactor)
		sumsq += math.Log(s.EQEFactor) * math.Log(s.EQEFactor)
		if s.Dead {
			dead++
		}
	}
	mean := sum / float64(n)
	sd := math.Sqrt(sumsq/float64(n) - mean*mean)
	if math.Abs(mean) > 0.01 {
		t.Errorf("log EQE factor mean = %v, want ~0", mean)
	}
	if math.Abs(sd-v.EQESigma) > 0.01 {
		t.Errorf("log EQE factor sd = %v, want %v", sd, v.EQESigma)
	}
	frac := float64(dead) / float64(n)
	if math.Abs(frac-v.DeadProb) > 0.003 {
		t.Errorf("dead fraction = %v, want %v", frac, v.DeadProb)
	}
}

func TestVariationZeroSigma(t *testing.T) {
	v := Variation{}
	rng := rand.New(rand.NewSource(1))
	s := v.Sample(rng)
	if s.EQEFactor != 1 || s.BandwidthFactor != 1 || s.RespFactor != 1 || s.Dead {
		t.Errorf("zero variation should be identity: %+v", s)
	}
}

func TestSampleArrayLength(t *testing.T) {
	v := DefaultVariation()
	rng := rand.New(rand.NewSource(7))
	arr := v.SampleArray(rng, 100)
	if len(arr) != 100 {
		t.Fatalf("len = %d", len(arr))
	}
}
