package photonics

import (
	"errors"
	"fmt"
	"math"
)

// Laser models a semiconductor laser transmitter above threshold. It covers
// both the 850 nm VCSELs used in multimode AOCs and the 1310 nm DFB/EML
// sources used in single-mode DR/FR modules; the two differ only in
// parameter values.
//
// Lasers are the power and reliability baseline Mosaic is measured against:
// they need threshold bias, temperature-sensitive drive, and (for EML) a
// separate modulator — and their wear-out FIT dominates optical-link
// failures.
type Laser struct {
	Name           string
	WavelengthM    float64 // emission wavelength, metres
	ThresholdA     float64 // threshold current, amperes
	SlopeEffWPerA  float64 // slope efficiency above threshold, W/A
	MaxCurrentA    float64 // absolute maximum drive current
	RINdBHz        float64 // relative intensity noise, dB/Hz
	BandwidthHz    float64 // small-signal modulation bandwidth at nominal bias
	ForwardVoltage float64 // forward voltage at operating point
	CouplingLossDB float64 // laser-to-fiber coupling loss, dB
	FITper1e9Hours float64 // failure rate in FIT (failures per 1e9 device-hours)
	TempCoeffPerK  float64 // fractional slope-efficiency loss per kelvin above 300K
	OperatingTempK float64 // junction temperature at operating point
}

// VCSEL850 returns a typical 850 nm datacom VCSEL (per-lane 25G-class device
// as used in 100G SR4 / AOC modules).
func VCSEL850() Laser {
	return Laser{
		Name:           "VCSEL-850",
		WavelengthM:    850e-9,
		ThresholdA:     0.6e-3,
		SlopeEffWPerA:  0.5,
		MaxCurrentA:    12e-3,
		RINdBHz:        -135,
		BandwidthHz:    22e9,
		ForwardVoltage: 2.0,
		CouplingLossDB: 2.0,
		FITper1e9Hours: 100, // datacom VCSELs: O(100) FIT at elevated temp
		TempCoeffPerK:  0.004,
		OperatingTempK: 330,
	}
}

// DFB1310 returns a typical 1310 nm DFB laser used (with external or direct
// modulation) in DR4/FR4 single-mode modules.
func DFB1310() Laser {
	return Laser{
		Name:           "DFB-1310",
		WavelengthM:    1310e-9,
		ThresholdA:     8e-3,
		SlopeEffWPerA:  0.35,
		MaxCurrentA:    120e-3,
		RINdBHz:        -150,
		BandwidthHz:    30e9,
		ForwardVoltage: 1.5,
		CouplingLossDB: 3.0,
		FITper1e9Hours: 500, // high-power CW sources in hot modules
		TempCoeffPerK:  0.006,
		OperatingTempK: 340,
	}
}

// Validate reports whether the laser parameters are physically meaningful.
func (l Laser) Validate() error {
	switch {
	case l.ThresholdA < 0 || l.SlopeEffWPerA <= 0:
		return errors.New("photonics: laser threshold/slope invalid")
	case l.MaxCurrentA <= l.ThresholdA:
		return errors.New("photonics: laser max current must exceed threshold")
	case l.WavelengthM <= 0:
		return errors.New("photonics: laser wavelength must be positive")
	}
	return nil
}

// OpticalPower returns the fiber-coupled optical power (W) at drive current
// i (A), accounting for threshold, temperature-derated slope efficiency, and
// coupling loss.
func (l Laser) OpticalPower(i float64) float64 {
	if i <= l.ThresholdA {
		return 0
	}
	slope := l.SlopeEffWPerA * l.tempDerate()
	p := slope * (i - l.ThresholdA)
	return p * math.Pow(10, -l.CouplingLossDB/10)
}

func (l Laser) tempDerate() float64 {
	d := 1 - l.TempCoeffPerK*(l.OperatingTempK-300)
	if d < 0.1 {
		return 0.1
	}
	return d
}

// CurrentForPower returns the drive current (A) needed to emit the given
// fiber-coupled optical power (W), or an error if it exceeds MaxCurrentA.
func (l Laser) CurrentForPower(p float64) (float64, error) {
	if p <= 0 {
		return l.ThresholdA, nil
	}
	slope := l.SlopeEffWPerA * l.tempDerate() * math.Pow(10, -l.CouplingLossDB/10)
	i := l.ThresholdA + p/slope
	if i > l.MaxCurrentA {
		return 0, fmt.Errorf("photonics: %s cannot reach %.2e W (needs %.1f mA > max %.1f mA)",
			l.Name, p, i*1e3, l.MaxCurrentA*1e3)
	}
	return i, nil
}

// WallPlugPower returns the electrical power (W) consumed by the laser diode
// at drive current i, including threshold bias: I·Vf.
func (l Laser) WallPlugPower(i float64) float64 {
	if i <= 0 {
		return 0
	}
	return i * l.ForwardVoltage
}

// Bandwidth returns the modulation bandwidth (Hz). For lasers this is
// essentially bias-independent in our operating range.
func (l Laser) Bandwidth(float64) float64 { return l.BandwidthHz }

// String identifies the device.
func (l Laser) String() string { return l.Name }
