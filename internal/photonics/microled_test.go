package photonics

import (
	"math"
	"testing"
	"testing/quick"

	"mosaic/internal/units"
)

func TestDefaultMicroLEDValid(t *testing.T) {
	if err := DefaultMicroLED().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMicroLEDValidateRejects(t *testing.T) {
	cases := []func(*MicroLED){
		func(m *MicroLED) { m.DiameterM = 0 },
		func(m *MicroLED) { m.ActiveThickness = -1 },
		func(m *MicroLED) { m.B = 0 },
		func(m *MicroLED) { m.WavelengthM = 0 },
		func(m *MicroLED) { m.ExtractionEff = 0 },
		func(m *MicroLED) { m.ExtractionEff = 1.5 },
	}
	for i, mutate := range cases {
		m := DefaultMicroLED()
		mutate(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid device", i)
		}
	}
}

func TestCarrierDensitySolvesBalance(t *testing.T) {
	m := DefaultMicroLED()
	for _, i := range []float64{10e-6, 100e-6, 500e-6, 2e-3} {
		n := m.CarrierDensity(i)
		vol := m.AreaM2() * m.ActiveThickness
		gen := i / (units.ElectronCharge * vol)
		got := m.A*n + m.B*n*n + m.C*n*n*n
		if !units.ApproxEqual(got, gen, 1e-6) {
			t.Errorf("I=%v: recombination %v != generation %v", i, got, gen)
		}
	}
}

func TestCarrierDensityMonotone(t *testing.T) {
	m := DefaultMicroLED()
	f := func(a, b float64) bool {
		ia := math.Abs(math.Mod(a, 5e-3))
		ib := math.Abs(math.Mod(b, 5e-3))
		if ia > ib {
			ia, ib = ib, ia
		}
		return m.CarrierDensity(ia) <= m.CarrierDensity(ib)+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIQEDroop(t *testing.T) {
	m := DefaultMicroLED()
	// IQE rises from low current, peaks, then droops under strong Auger.
	low := m.IQE(1e-6)
	mid := m.IQE(200e-6)
	high := m.IQE(20e-3)
	if !(mid > low) {
		t.Errorf("IQE should rise from low drive: low=%v mid=%v", low, mid)
	}
	if !(high < mid) {
		t.Errorf("IQE should droop at very high drive: mid=%v high=%v", mid, high)
	}
	for _, i := range []float64{1e-6, 1e-4, 1e-2} {
		if q := m.IQE(i); q < 0 || q > 1 {
			t.Errorf("IQE(%v) = %v out of [0,1]", i, q)
		}
	}
}

func TestOpticalPowerOperatingPoint(t *testing.T) {
	m := DefaultMicroLED()
	// At a few kA/cm² (the paper's class of drive), a 4 µm device should
	// emit tens of microwatts — enough for a 50 m imaging-fiber budget.
	i := m.NominalCurrent()
	p := m.OpticalPower(i)
	if p < 10e-6 || p > 500e-6 {
		t.Errorf("optical power at nominal drive = %v W, want tens of uW", p)
	}
	if m.OpticalPower(0) != 0 || m.OpticalPower(-1) != 0 {
		t.Error("non-positive drive should emit nothing")
	}
}

func TestBandwidthSupports2Gbps(t *testing.T) {
	m := DefaultMicroLED()
	i := m.NominalCurrent()
	bw := m.Bandwidth(i)
	// NRZ at 2 Gbps wants >= ~0.6-0.7 x bitrate of bandwidth.
	if bw < 0.9e9 {
		t.Errorf("bandwidth at nominal drive = %v Hz, too slow for 2 Gbps NRZ", bw)
	}
	if bw > 20e9 {
		t.Errorf("bandwidth at nominal drive = %v Hz, implausibly fast for an LED", bw)
	}
}

func TestBandwidthIncreasesWithDrive(t *testing.T) {
	m := DefaultMicroLED()
	m.CapacitanceF = 1e-18 // isolate the carrier-lifetime term
	b1 := m.Bandwidth(50e-6)
	b2 := m.Bandwidth(500e-6)
	b3 := m.Bandwidth(5e-3)
	if !(b1 < b2 && b2 < b3) {
		t.Errorf("carrier bandwidth should increase with drive: %v %v %v", b1, b2, b3)
	}
}

func TestRCBandwidthLimits(t *testing.T) {
	m := DefaultMicroLED()
	rc := (m.SeriesOhm + m.LoadOhm) * m.CapacitanceF
	want := 1 / (2 * math.Pi * rc)
	if got := m.RCBandwidth(); !units.ApproxEqual(got, want, 1e-12) {
		t.Errorf("RCBandwidth = %v, want %v", got, want)
	}
	m.CapacitanceF = 0
	if !math.IsInf(m.RCBandwidth(), 1) {
		t.Error("zero capacitance should be unlimited")
	}
}

func TestCombinedBandwidthBelowBoth(t *testing.T) {
	m := DefaultMicroLED()
	i := 1e-3
	fc, fr, f := m.CarrierBandwidth(i), m.RCBandwidth(), m.Bandwidth(i)
	if f > fc || f > fr {
		t.Errorf("combined bandwidth %v exceeds a pole (carrier %v, RC %v)", f, fc, fr)
	}
}

func TestWallPlugPower(t *testing.T) {
	m := DefaultMicroLED()
	i := 0.5e-3
	want := i * (m.ForwardVoltage + i*m.SeriesOhm)
	if got := m.WallPlugPower(i); !units.ApproxEqual(got, want, 1e-12) {
		t.Errorf("WallPlugPower = %v, want %v", got, want)
	}
	// A microLED channel should burn only ~1-2 mW in the diode itself.
	if p := m.WallPlugPower(i); p > 5e-3 {
		t.Errorf("diode power %v W is too high for the wide-and-slow story", p)
	}
}

func TestCurrentDensityRoundTrip(t *testing.T) {
	m := DefaultMicroLED()
	f := func(raw float64) bool {
		j := math.Abs(math.Mod(raw, 1e8))
		i := m.CurrentForDensity(j)
		return units.ApproxEqual(m.CurrentDensity(i), j, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEQEBelowExtraction(t *testing.T) {
	m := DefaultMicroLED()
	for _, i := range []float64{1e-5, 1e-4, 1e-3} {
		if e := m.EQE(i); e > m.ExtractionEff {
			t.Errorf("EQE(%v) = %v exceeds extraction efficiency", i, e)
		}
	}
}
