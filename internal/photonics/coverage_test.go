package photonics

import (
	"math"
	"strings"
	"testing"
)

func TestLaserWallPlugAndBandwidth(t *testing.T) {
	l := VCSEL850()
	if l.WallPlugPower(0) != 0 || l.WallPlugPower(-1) != 0 {
		t.Error("nonpositive drive should burn nothing")
	}
	want := 5e-3 * l.ForwardVoltage
	if got := l.WallPlugPower(5e-3); math.Abs(got-want) > 1e-12 {
		t.Errorf("wall plug = %v, want %v", got, want)
	}
	if l.Bandwidth(1e-3) != l.BandwidthHz {
		t.Error("laser bandwidth should be bias-independent here")
	}
	if !strings.Contains(l.String(), "VCSEL") {
		t.Errorf("String = %q", l.String())
	}
}

func TestLaserValidateWavelength(t *testing.T) {
	l := VCSEL850()
	l.WavelengthM = 0
	if l.Validate() == nil {
		t.Error("zero wavelength accepted")
	}
}

func TestLaserTempDerateFloor(t *testing.T) {
	l := VCSEL850()
	l.OperatingTempK = 3000 // absurd: derate clamps at 0.1
	p1 := l.OpticalPower(10e-3)
	l2 := VCSEL850()
	l2.OperatingTempK = 300
	p2 := l2.OpticalPower(10e-3)
	if !(p1 > 0 && p1 < p2) {
		t.Errorf("derate floor broken: %v vs %v", p1, p2)
	}
}

func TestMicroLEDStringAndExtremes(t *testing.T) {
	m := DefaultMicroLED()
	if !strings.Contains(m.String(), "microLED") {
		t.Errorf("String = %q", m.String())
	}
	if m.CarrierDensity(0) != 0 || m.CarrierDensity(-1) != 0 {
		t.Error("nonpositive drive should have zero carriers")
	}
	if m.IQE(0) != 0 {
		t.Error("zero drive should have zero IQE")
	}
	// Pathological drive saturates instead of looping forever.
	if n := m.CarrierDensity(1e20); n < 1e30 {
		t.Errorf("huge drive carrier density = %v", n)
	}
	if m.WallPlugPower(0) != 0 {
		t.Error("zero drive should burn nothing")
	}
	// Degenerate device: zero recombination denominators.
	z := m
	z.A, z.B, z.C = 0, 1e-30, 0
	if z.CarrierBandwidth(0) != 0 {
		t.Error("zero-carrier bandwidth should be 0")
	}
}

func TestMicroLEDBandwidthWithoutRC(t *testing.T) {
	m := DefaultMicroLED()
	m.CapacitanceF = 0 // RC pole vanishes
	i := m.NominalCurrent()
	if got, want := m.Bandwidth(i), m.CarrierBandwidth(i); math.Abs(got-want) > 1e-6*want {
		t.Errorf("bandwidth without RC = %v, want carrier-only %v", got, want)
	}
	// At zero drive the carrier lifetime degenerates to the SRH constant:
	// a finite (and small) bandwidth, not zero.
	if bw := m.Bandwidth(0); bw <= 0 || bw > m.Bandwidth(i) {
		t.Errorf("zero-drive bandwidth = %v", bw)
	}
}

func TestReceiverValidatePropagates(t *testing.T) {
	r := MosaicReceiver()
	r.PD.DiameterM = 0
	if r.Validate() == nil {
		t.Error("bad PD accepted")
	}
	r = MosaicReceiver()
	r.Amp.BandwidthHz = 0
	if r.Validate() == nil {
		t.Error("bad TIA accepted")
	}
}

func TestLEDPenaltyDarkEdge(t *testing.T) {
	m := DefaultMicroLED()
	// Zero drive: both reference and hot power are zero -> infinite penalty
	// by convention (no signal to compare).
	if !math.IsInf(m.PowerPenaltyDB(0, 350), 1) {
		t.Error("zero-drive penalty should be infinite")
	}
}
