// Package photonics models the optoelectronic devices used by Mosaic and its
// baselines: GaN microLED transmitters (the paper's key enabler), VCSEL and
// DFB/EML lasers (conventional-optics baselines), and photodiode + TIA
// receivers.
//
// The microLED model follows the standard ABC recombination description of
// III-nitride emitters: at steady state the injected carrier rate balances
// Shockley-Read-Hall (A·n), radiative (B·n²) and Auger (C·n³) recombination.
// Internal quantum efficiency, efficiency droop, and the modulation
// bandwidth (via the differential carrier lifetime) all fall out of the same
// three coefficients, which is exactly why wide-and-slow works: a small,
// hard-driven LED is fast *enough* for ~2 Gbps while remaining trivially
// cheap to drive.
package photonics

import (
	"errors"
	"fmt"
	"math"

	"mosaic/internal/units"
)

// MicroLED models a single directly-modulated GaN microLED.
// The zero value is not useful; construct with NewMicroLED or use
// DefaultMicroLED.
type MicroLED struct {
	// Geometry.
	DiameterM       float64 // emitter diameter, metres
	ActiveThickness float64 // total quantum-well thickness, metres

	// ABC recombination coefficients (SI: 1/s, m^3/s, m^6/s).
	A float64 // Shockley-Read-Hall (incl. surface recombination for small mesas)
	B float64 // radiative
	C float64 // Auger

	// Optical.
	WavelengthM   float64 // peak emission wavelength, metres
	ExtractionEff float64 // light extraction efficiency into the fiber NA, 0..1
	RINdBHz       float64 // effective relative intensity noise, dB/Hz

	// Electrical.
	ForwardVoltage float64 // diode forward voltage at operating point, volts
	SeriesOhm      float64 // series resistance, ohms
	CapacitanceF   float64 // junction+parasitic capacitance, farads
	LoadOhm        float64 // driver output resistance seen by the junction, ohms
}

// NominalCurrentDensity is the paper-class operating point for a comms
// microLED: ~6 kA/cm² (in A/m²). Small mesas tolerate this; it buys the
// short differential carrier lifetime that makes 2 Gbps NRZ possible.
const NominalCurrentDensity = 6e7 // A/m²

// DefaultMicroLED returns a microLED parameterised to match the class of
// device the paper builds on: a ~4 µm blue GaN emitter with a thin active
// region that sustains ~2 Gbps NRZ when driven at a few kA/cm².
func DefaultMicroLED() MicroLED {
	return MicroLED{
		DiameterM:       4e-6,
		ActiveThickness: 3e-9,
		A:               5e8,   // small-mesa surface recombination (fast, lossy)
		B:               2e-17, // GaN radiative coefficient
		C:               1e-42, // Auger (drives droop)
		WavelengthM:     430e-9,
		ExtractionEff:   0.30,
		RINdBHz:         -125,
		ForwardVoltage:  3.1,
		SeriesOhm:       120,
		CapacitanceF:    100e-15,
		LoadOhm:         50,
	}
}

// NominalCurrent returns the drive current at the nominal operating
// current density.
func (m MicroLED) NominalCurrent() float64 {
	return m.CurrentForDensity(NominalCurrentDensity)
}

// Validate reports whether the device parameters are physically meaningful.
func (m MicroLED) Validate() error {
	switch {
	case m.DiameterM <= 0:
		return errors.New("photonics: microLED diameter must be positive")
	case m.ActiveThickness <= 0:
		return errors.New("photonics: active thickness must be positive")
	case m.A < 0 || m.B <= 0 || m.C < 0:
		return errors.New("photonics: ABC coefficients invalid (need A>=0, B>0, C>=0)")
	case m.WavelengthM <= 0:
		return errors.New("photonics: wavelength must be positive")
	case m.ExtractionEff <= 0 || m.ExtractionEff > 1:
		return errors.New("photonics: extraction efficiency must be in (0,1]")
	}
	return nil
}

// AreaM2 returns the emitter area in m².
func (m MicroLED) AreaM2() float64 {
	r := m.DiameterM / 2
	return math.Pi * r * r
}

// CurrentDensity returns the drive current density in A/m² for current i (A).
func (m MicroLED) CurrentDensity(i float64) float64 {
	return i / m.AreaM2()
}

// CurrentForDensity returns the drive current in A for a current density in
// A/m².
func (m MicroLED) CurrentForDensity(j float64) float64 {
	return j * m.AreaM2()
}

// CarrierDensity returns the steady-state carrier density n (1/m³) at drive
// current i (A), solving I/(qV) = A·n + B·n² + C·n³ by bisection.
// It returns 0 for non-positive currents.
func (m MicroLED) CarrierDensity(i float64) float64 {
	if i <= 0 {
		return 0
	}
	vol := m.AreaM2() * m.ActiveThickness
	gen := i / (units.ElectronCharge * vol) // carriers per m³ per s
	recomb := func(n float64) float64 {
		return m.A*n + m.B*n*n + m.C*n*n*n
	}
	// Bracket: recombination is strictly increasing in n.
	lo, hi := 0.0, 1e20
	for recomb(hi) < gen {
		hi *= 10
		if hi > 1e40 {
			return hi // pathological drive; saturate
		}
	}
	for k := 0; k < 200; k++ {
		mid := (lo + hi) / 2
		if recomb(mid) < gen {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// IQE returns the internal quantum efficiency at drive current i:
// B·n² / (A·n + B·n² + C·n³). It exhibits the characteristic droop at high
// drive because of the Auger term.
func (m MicroLED) IQE(i float64) float64 {
	n := m.CarrierDensity(i)
	if n <= 0 {
		return 0
	}
	rad := m.B * n * n
	tot := m.A*n + rad + m.C*n*n*n
	return rad / tot
}

// EQE returns the external quantum efficiency (IQE × extraction).
func (m MicroLED) EQE(i float64) float64 {
	return m.IQE(i) * m.ExtractionEff
}

// OpticalPower returns the emitted optical power (W) coupled toward the
// fiber for drive current i (A): EQE(i) · (hν/q) · i.
func (m MicroLED) OpticalPower(i float64) float64 {
	if i <= 0 {
		return 0
	}
	ev := units.PhotonEnergy(m.WavelengthM) / units.ElectronCharge // photon energy in eV
	return m.EQE(i) * ev * i
}

// DifferentialLifetime returns the small-signal carrier lifetime (s) at the
// operating point set by current i: τ = 1/(A + 2B·n + 3C·n²).
func (m MicroLED) DifferentialLifetime(i float64) float64 {
	n := m.CarrierDensity(i)
	denom := m.A + 2*m.B*n + 3*m.C*n*n
	if denom <= 0 {
		return math.Inf(1)
	}
	return 1 / denom
}

// CarrierBandwidth returns the carrier-limited 3 dB modulation bandwidth
// (Hz) at drive current i: f = 1/(2π·τ) for the single-pole carrier response.
func (m MicroLED) CarrierBandwidth(i float64) float64 {
	tau := m.DifferentialLifetime(i)
	if math.IsInf(tau, 1) {
		return 0
	}
	return 1 / (2 * math.Pi * tau)
}

// RCBandwidth returns the electrical RC-limited bandwidth (Hz):
// f = 1/(2π·(Rs+Rload)·C).
func (m MicroLED) RCBandwidth() float64 {
	rc := (m.SeriesOhm + m.LoadOhm) * m.CapacitanceF
	if rc <= 0 {
		return math.Inf(1)
	}
	return 1 / (2 * math.Pi * rc)
}

// Bandwidth returns the combined 3 dB modulation bandwidth (Hz) at drive
// current i, treating the carrier and RC responses as cascaded single poles:
// 1/f² = 1/f_carrier² + 1/f_RC².
func (m MicroLED) Bandwidth(i float64) float64 {
	fc := m.CarrierBandwidth(i)
	fr := m.RCBandwidth()
	if fc <= 0 {
		return 0
	}
	if math.IsInf(fr, 1) {
		return fc
	}
	return fc * fr / math.Sqrt(fc*fc+fr*fr)
}

// WallPlugPower returns the electrical power (W) consumed by the LED itself
// at drive current i: I·(Vf + I·Rs).
func (m MicroLED) WallPlugPower(i float64) float64 {
	if i <= 0 {
		return 0
	}
	return i * (m.ForwardVoltage + i*m.SeriesOhm)
}

// String summarises the device.
func (m MicroLED) String() string {
	return fmt.Sprintf("microLED{d=%.1fum, lambda=%.0fnm}", m.DiameterM*1e6, m.WavelengthM*1e9)
}
