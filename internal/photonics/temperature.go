package photonics

import "math"

// Temperature behaviour. A large part of the reliability and deployment
// story is thermal: lasers live near their maximum ratings inside hot
// pluggables (threshold current grows exponentially with temperature,
// efficiency collapses, wear-out accelerates), while LEDs — with no
// threshold and display-industry thermal margins — barely notice the same
// excursion. These models let the experiments sweep case temperature.

// ReferenceTempK is the temperature the base device parameters describe.
const ReferenceTempK = 300.0

// AtTemperature returns a copy of the microLED derated to junction
// temperature tK. Physics: the radiative coefficient falls as T^(-3/2),
// Shockley-Read-Hall recombination is thermally activated (grows with T),
// and Auger grows mildly. Efficiency therefore sags gently and roughly
// linearly over the datacenter range — no cliff.
func (m MicroLED) AtTemperature(tK float64) MicroLED {
	if tK <= 0 {
		return m
	}
	r := tK / ReferenceTempK
	out := m
	out.B = m.B * math.Pow(r, -1.5)
	out.A = m.A * math.Pow(r, 2) // surface/SRH activation, mild power law
	out.C = m.C * math.Pow(r, 0.5)
	return out
}

// ThresholdT0K is the characteristic temperature of laser threshold
// growth: Ith(T) = Ith(300K)·exp((T-300)/T0). Datacom VCSELs sit near
// 120 K; 1310 nm DFBs nearer 60 K (which is why DR modules run coolers).
const (
	VCSELThresholdT0K = 120.0
	DFBThresholdT0K   = 60.0
)

// AtTemperature returns a copy of the laser at junction temperature tK:
// the threshold rises exponentially with its characteristic T0 and the
// operating-point derating in OpticalPower sees the new temperature.
func (l Laser) AtTemperature(tK float64) Laser {
	if tK <= 0 {
		return l
	}
	t0 := VCSELThresholdT0K
	if l.WavelengthM > 1e-6 {
		t0 = DFBThresholdT0K
	}
	out := l
	out.ThresholdA = l.ThresholdA * math.Exp((tK-ReferenceTempK)/t0)
	out.OperatingTempK = tK
	return out
}

// PowerPenaltyDB returns the optical power penalty (dB) of running the
// device at temperature tK instead of the reference, at the same drive
// current. Positive means less light.
func (m MicroLED) PowerPenaltyDB(i, tK float64) float64 {
	ref := m.OpticalPower(i)
	hot := m.AtTemperature(tK).OpticalPower(i)
	if hot <= 0 || ref <= 0 {
		return math.Inf(1)
	}
	return -10 * math.Log10(hot/ref)
}

// PowerPenaltyDB is the laser equivalent: same drive current, hotter
// junction. When the threshold crosses the drive current the laser emits
// nothing and the penalty is infinite — the laser "cliff".
func (l Laser) PowerPenaltyDB(i, tK float64) float64 {
	ref := l.OpticalPower(i)
	hot := l.AtTemperature(tK).OpticalPower(i)
	if hot <= 0 || ref <= 0 {
		return math.Inf(1)
	}
	return -10 * math.Log10(hot/ref)
}

// AccelerationFactor returns the Arrhenius wear-out acceleration of a
// device at temperature tK relative to the reference, with activation
// energy eaEV (typical 0.7 eV for laser facet/junction wear-out, similar
// for LEDs but from a ~100x lower base FIT).
func AccelerationFactor(eaEV, tK float64) float64 {
	if tK <= 0 {
		return math.Inf(1)
	}
	const kBeV = 8.617333262e-5 // Boltzmann in eV/K
	return math.Exp(eaEV / kBeV * (1/ReferenceTempK - 1/tK))
}
