package photonics

import (
	"math"
	"testing"
)

func TestMicroLEDTemperatureSag(t *testing.T) {
	m := DefaultMicroLED()
	i := m.NominalCurrent()
	p300 := m.OpticalPower(i)
	p340 := m.AtTemperature(340).OpticalPower(i)
	p380 := m.AtTemperature(380).OpticalPower(i)
	if !(p340 < p300 && p380 < p340) {
		t.Fatalf("LED power should sag with temperature: %v %v %v", p300, p340, p380)
	}
	// But gently: under 3 dB at 380 K (the "no cliff" property).
	if pen := m.PowerPenaltyDB(i, 380); pen > 3 {
		t.Errorf("LED penalty at 380K = %v dB, want < 3", pen)
	}
}

func TestLaserTemperatureCliff(t *testing.T) {
	l := VCSEL850()
	i := 4e-3 // a typical bias
	pen340 := l.PowerPenaltyDB(i, 340)
	pen400 := l.PowerPenaltyDB(i, 400)
	if !(pen400 > pen340) {
		t.Fatalf("laser penalty should grow: %v -> %v", pen340, pen400)
	}
	// Push far enough and the threshold eats the whole drive: infinite
	// penalty (no light).
	if !math.IsInf(l.PowerPenaltyDB(1.2*l.ThresholdA, 420), 1) {
		t.Error("laser near threshold should go dark when hot")
	}
}

func TestLEDBeatsLaserThermally(t *testing.T) {
	// The motivating comparison: at the same +60K excursion, the LED loses
	// far less light than the laser.
	led := DefaultMicroLED()
	laser := VCSEL850()
	ledPen := led.PowerPenaltyDB(led.NominalCurrent(), 360)
	laserPen := laser.PowerPenaltyDB(2e-3, 360) // modest bias, where it hurts
	if !(ledPen < laserPen) {
		t.Errorf("LED penalty %v dB should be below laser %v dB", ledPen, laserPen)
	}
}

func TestDFBWorseThanVCSEL(t *testing.T) {
	// DFBs have a lower T0: same excursion, bigger threshold growth.
	v := VCSEL850().AtTemperature(360)
	d := DFB1310().AtTemperature(360)
	vGrowth := v.ThresholdA / VCSEL850().ThresholdA
	dGrowth := d.ThresholdA / DFB1310().ThresholdA
	if !(dGrowth > vGrowth) {
		t.Errorf("DFB threshold growth %v should exceed VCSEL %v", dGrowth, vGrowth)
	}
}

func TestAtTemperatureGuards(t *testing.T) {
	m := DefaultMicroLED()
	if m.AtTemperature(0).B != m.B {
		t.Error("nonpositive temperature should be identity")
	}
	l := VCSEL850()
	if l.AtTemperature(-5).ThresholdA != l.ThresholdA {
		t.Error("nonpositive temperature should be identity")
	}
}

func TestReferenceTempIdentityApprox(t *testing.T) {
	m := DefaultMicroLED()
	i := m.NominalCurrent()
	if pen := m.PowerPenaltyDB(i, ReferenceTempK); math.Abs(pen) > 1e-9 {
		t.Errorf("penalty at reference temp = %v, want 0", pen)
	}
}

func TestAccelerationFactor(t *testing.T) {
	if got := AccelerationFactor(0.7, ReferenceTempK); math.Abs(got-1) > 1e-12 {
		t.Errorf("acceleration at reference = %v", got)
	}
	a330 := AccelerationFactor(0.7, 330)
	a360 := AccelerationFactor(0.7, 360)
	if !(a330 > 1 && a360 > a330) {
		t.Errorf("acceleration should grow: %v %v", a330, a360)
	}
	// 0.7 eV, +30K: roughly an order of magnitude.
	if a330 < 5 || a330 > 30 {
		t.Errorf("acceleration at 330K = %v, want ~10", a330)
	}
	if !math.IsInf(AccelerationFactor(0.7, 0), 1) {
		t.Error("zero temperature should be infinite")
	}
}

func TestLEDBandwidthAtTemperature(t *testing.T) {
	// Hotter device: faster SRH shortens the lifetime, so the LED actually
	// gets a little faster while losing efficiency — a known LED trait.
	m := DefaultMicroLED()
	i := m.NominalCurrent()
	if !(m.AtTemperature(370).Bandwidth(i) >= m.Bandwidth(i)*0.9) {
		t.Error("hot LED bandwidth should not collapse")
	}
}
