package photonics

import (
	"math"
	"testing"

	"mosaic/internal/units"
)

func TestLaserCatalogValid(t *testing.T) {
	for _, l := range []Laser{VCSEL850(), DFB1310()} {
		if err := l.Validate(); err != nil {
			t.Errorf("%s: %v", l.Name, err)
		}
	}
}

func TestLaserValidateRejects(t *testing.T) {
	l := VCSEL850()
	l.MaxCurrentA = l.ThresholdA / 2
	if err := l.Validate(); err == nil {
		t.Error("accepted max current below threshold")
	}
	l = VCSEL850()
	l.SlopeEffWPerA = 0
	if err := l.Validate(); err == nil {
		t.Error("accepted zero slope efficiency")
	}
}

func TestLaserThresholdBehaviour(t *testing.T) {
	l := VCSEL850()
	if p := l.OpticalPower(l.ThresholdA / 2); p != 0 {
		t.Errorf("below threshold should emit 0, got %v", p)
	}
	if p := l.OpticalPower(l.ThresholdA); p != 0 {
		t.Errorf("at threshold should emit 0, got %v", p)
	}
	if p := l.OpticalPower(2 * l.ThresholdA); p <= 0 {
		t.Error("above threshold should emit")
	}
}

func TestLaserLinearAboveThreshold(t *testing.T) {
	l := VCSEL850()
	p1 := l.OpticalPower(l.ThresholdA + 1e-3)
	p2 := l.OpticalPower(l.ThresholdA + 2e-3)
	if !units.ApproxEqual(p2, 2*p1, 1e-9) {
		t.Errorf("L-I should be linear above threshold: %v vs %v", p1, p2)
	}
}

func TestCurrentForPowerRoundTrip(t *testing.T) {
	for _, l := range []Laser{VCSEL850(), DFB1310()} {
		want := 1e-3 // 0 dBm
		i, err := l.CurrentForPower(want)
		if err != nil {
			t.Fatalf("%s: %v", l.Name, err)
		}
		if got := l.OpticalPower(i); !units.ApproxEqual(got, want, 1e-9) {
			t.Errorf("%s: round trip %v != %v", l.Name, got, want)
		}
	}
}

func TestCurrentForPowerOverMax(t *testing.T) {
	l := VCSEL850()
	if _, err := l.CurrentForPower(1.0); err == nil {
		t.Error("1 W from a VCSEL should be rejected")
	}
	if i, err := l.CurrentForPower(0); err != nil || i != l.ThresholdA {
		t.Errorf("zero power should bias at threshold, got %v, %v", i, err)
	}
}

func TestLaserTempDerating(t *testing.T) {
	cold := VCSEL850()
	cold.OperatingTempK = 300
	hot := VCSEL850()
	hot.OperatingTempK = 360
	i := 5e-3
	if !(hot.OpticalPower(i) < cold.OpticalPower(i)) {
		t.Error("hot laser should emit less at same drive")
	}
}

func TestMicroLEDTransmitterEnergyPerBit(t *testing.T) {
	// The wide-and-slow premise: a microLED channel (diode + trivial CMOS
	// driver) costs only a couple of pJ/bit at the transmitter — the power
	// win over optics comes from there being no DSP, CDR, or laser driver.
	led := DefaultMicroLED()
	i := led.NominalCurrent()
	p := led.WallPlugPower(i)
	if p > 5e-3 {
		t.Errorf("per-channel diode power %v W too high", p)
	}
	pj := p / 2e9 * 1e12 // at 2 Gbps
	if pj > 3 {
		t.Errorf("transmitter energy %v pJ/bit exceeds the wide-and-slow budget", pj)
	}
	if math.IsNaN(pj) || pj <= 0 {
		t.Errorf("invalid energy per bit: %v", pj)
	}
}
