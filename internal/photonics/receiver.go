package photonics

import (
	"errors"
	"math"

	"mosaic/internal/units"
)

// Photodiode models a PIN photodetector. Mosaic uses a dense array of small
// silicon PDs (one per channel, blue-sensitive); conventional optics use a
// single large-bandwidth InGaAs or GaAs device per lane.
type Photodiode struct {
	Name             string
	Material         string  // "Si", "InGaAs", "GaAs"
	DiameterM        float64 // active-area diameter
	PeakRespAPerW    float64 // responsivity at peak wavelength, A/W
	PeakWavelengthM  float64 // wavelength of peak responsivity
	CapPerAreaFPerM2 float64 // junction capacitance per unit area, F/m²
	DarkCurrentA     float64 // dark current, A
}

// SiPD returns a small silicon photodiode matched to a blue microLED
// channel. Silicon responsivity at 430 nm is modest (~0.2-0.25 A/W) but the
// device is nearly free in a CMOS process and its tiny area keeps
// capacitance (and hence TIA noise) low.
func SiPD() Photodiode {
	return Photodiode{
		Name:             "Si-PD",
		Material:         "Si",
		DiameterM:        20e-6,
		PeakRespAPerW:    0.55,
		PeakWavelengthM:  800e-9,
		CapPerAreaFPerM2: 0.8e-3, // ~0.8 fF/µm²
		DarkCurrentA:     50e-12,
	}
}

// InGaAsPD returns a 1310 nm telecom photodiode used in DR/FR receivers.
func InGaAsPD() Photodiode {
	return Photodiode{
		Name:             "InGaAs-PD",
		Material:         "InGaAs",
		DiameterM:        16e-6,
		PeakRespAPerW:    1.0,
		PeakWavelengthM:  1310e-9,
		CapPerAreaFPerM2: 1.5e-3,
		DarkCurrentA:     5e-9,
	}
}

// GaAsPD returns an 850 nm datacom photodiode used in SR4/AOC receivers.
func GaAsPD() Photodiode {
	return Photodiode{
		Name:             "GaAs-PD",
		Material:         "GaAs",
		DiameterM:        18e-6,
		PeakRespAPerW:    0.6,
		PeakWavelengthM:  850e-9,
		CapPerAreaFPerM2: 1.0e-3,
		DarkCurrentA:     1e-9,
	}
}

// Validate reports whether the photodiode parameters are meaningful.
func (p Photodiode) Validate() error {
	if p.DiameterM <= 0 || p.PeakRespAPerW <= 0 || p.PeakWavelengthM <= 0 {
		return errors.New("photonics: photodiode geometry/responsivity invalid")
	}
	return nil
}

// AreaM2 returns the active area in m².
func (p Photodiode) AreaM2() float64 {
	r := p.DiameterM / 2
	return math.Pi * r * r
}

// CapacitanceF returns the junction capacitance in farads.
func (p Photodiode) CapacitanceF() float64 {
	return p.CapPerAreaFPerM2 * p.AreaM2()
}

// Responsivity returns the responsivity (A/W) at the given wavelength,
// using a quantum-efficiency roll-off around the peak: responsivity scales
// linearly with wavelength (R = η·qλ/hc) below the peak and falls off as a
// Gaussian above it (band edge).
func (p Photodiode) Responsivity(lambda float64) float64 {
	if lambda <= 0 {
		return 0
	}
	// Quantum efficiency implied at the peak.
	etaPeak := p.PeakRespAPerW * units.PhotonEnergy(p.PeakWavelengthM) / units.ElectronCharge
	if etaPeak > 1 {
		etaPeak = 1
	}
	eta := etaPeak
	if lambda > p.PeakWavelengthM {
		// Band-edge roll-off: ~Gaussian with 8% width.
		d := (lambda - p.PeakWavelengthM) / (0.08 * p.PeakWavelengthM)
		eta *= math.Exp(-d * d)
	}
	return eta * units.ElectronCharge / units.PhotonEnergy(lambda)
}

// Photocurrent returns the signal current (A) for incident optical power
// (W) at the given wavelength, including dark current.
func (p Photodiode) Photocurrent(powerW, lambda float64) float64 {
	if powerW < 0 {
		powerW = 0
	}
	return p.Responsivity(lambda)*powerW + p.DarkCurrentA
}

// TIA models a transimpedance amplifier front end.
type TIA struct {
	Name          string
	GainOhm       float64 // transimpedance
	NoiseAPerRtHz float64 // input-referred noise current density, A/√Hz
	BandwidthHz   float64 // amplifier bandwidth
	PowerW        float64 // static power consumption
}

// SimpleTIA returns the low-speed TIA a Mosaic channel needs: a ~2 GHz,
// sub-milliwatt inverter-style CMOS stage. This is where the wide-and-slow
// win comes from — no 50+ GHz analog front end, no equalizer.
func SimpleTIA() TIA {
	return TIA{
		Name:          "CMOS-TIA-2G",
		GainOhm:       10e3,
		NoiseAPerRtHz: 1.5e-12,
		BandwidthHz:   2.2e9,
		PowerW:        0.9e-3,
	}
}

// HighSpeedTIA returns the 50+ GHz front end a 100 Gbps/lane receiver needs.
func HighSpeedTIA() TIA {
	return TIA{
		Name:          "SiGe-TIA-50G",
		GainOhm:       4e3,
		NoiseAPerRtHz: 14e-12,
		BandwidthHz:   42e9,
		PowerW:        180e-3,
	}
}

// Validate reports whether the TIA parameters are meaningful.
func (t TIA) Validate() error {
	if t.GainOhm <= 0 || t.NoiseAPerRtHz <= 0 || t.BandwidthHz <= 0 {
		return errors.New("photonics: TIA parameters invalid")
	}
	return nil
}

// InputNoiseCurrentSq returns the mean-square input-referred noise current
// (A²) integrated over bandwidth bw (Hz), capped by the TIA's own bandwidth.
func (t TIA) InputNoiseCurrentSq(bw float64) float64 {
	if bw <= 0 {
		return 0
	}
	if bw > t.BandwidthHz {
		bw = t.BandwidthHz
	}
	return t.NoiseAPerRtHz * t.NoiseAPerRtHz * bw
}

// Receiver couples a photodiode with a TIA.
type Receiver struct {
	PD  Photodiode
	Amp TIA
}

// MosaicReceiver returns the per-channel Mosaic receiver (Si PD + slow
// CMOS TIA).
func MosaicReceiver() Receiver {
	return Receiver{PD: SiPD(), Amp: SimpleTIA()}
}

// Validate checks both halves of the receiver.
func (r Receiver) Validate() error {
	if err := r.PD.Validate(); err != nil {
		return err
	}
	return r.Amp.Validate()
}

// Bandwidth returns the receiver's effective bandwidth (Hz): the cascade of
// the TIA bandwidth and the PD RC pole into the TIA input (assumed 50 ohm
// virtual ground, handled inside GainOhm so we use the TIA figure directly
// combined with a PD pole at 1/(2π·50·Cpd)).
func (r Receiver) Bandwidth() float64 {
	fpd := 1 / (2 * math.Pi * 50 * r.PD.CapacitanceF())
	ft := r.Amp.BandwidthHz
	return fpd * ft / math.Sqrt(fpd*fpd+ft*ft)
}

// NoiseCurrentSigma returns the RMS noise current (A) at the decision point
// for a received average photocurrent i (A) over bandwidth bw (Hz). It sums
// TIA input noise, shot noise, and dark-current shot noise.
func (r Receiver) NoiseCurrentSigma(i, bw float64) float64 {
	n := r.Amp.InputNoiseCurrentSq(bw) +
		units.ShotNoiseCurrentSq(i, bw) +
		units.ShotNoiseCurrentSq(r.PD.DarkCurrentA, bw)
	return math.Sqrt(n)
}
