package netsim

import (
	"errors"
	"fmt"
)

// NewLeafSpine builds the two-tier topology most production pods actually
// use: `leaves` leaf (ToR) switches each serving `hostsPerLeaf` hosts and
// uplinking to every one of `spines` spine switches. The uplink:downlink
// ratio sets the oversubscription (hostsPerLeaf / spines at equal rates).
//
// Leaf-spine reuses the fat-tree node kinds: leaves are NodeEdge, spines
// are NodeAgg (there is no core tier); host-leaf links are TierHostToR and
// leaf-spine links are TierToRAgg, so TechPlans apply unchanged.
func NewLeafSpine(leaves, spines, hostsPerLeaf int, linkRate float64) (*Topology, error) {
	if leaves <= 0 || spines <= 0 || hostsPerLeaf <= 0 {
		return nil, errors.New("netsim: leaf-spine needs positive leaves, spines, hosts")
	}
	if linkRate <= 0 {
		return nil, errors.New("netsim: link rate must be positive")
	}
	t := &Topology{K: 0}

	addNode := func(kind NodeKind, pod int) int {
		id := len(t.Nodes)
		t.Nodes = append(t.Nodes, Node{ID: id, Kind: kind, Pod: pod})
		return id
	}
	addLink := func(a, b int, tier Tier) {
		id := len(t.Links)
		t.Links = append(t.Links, Link{
			ID: id, A: a, B: b, Tier: tier,
			LengthM: tier.TypicalLengthM(), RateBps: linkRate,
		})
	}

	spineIDs := make([]int, 0, spines)
	for s := 0; s < spines; s++ {
		spineIDs = append(spineIDs, addNode(NodeAgg, -1))
	}
	for l := 0; l < leaves; l++ {
		leaf := addNode(NodeEdge, l)
		for h := 0; h < hostsPerLeaf; h++ {
			host := addNode(NodeHost, l)
			t.hosts = append(t.hosts, host)
			addLink(host, leaf, TierHostToR)
		}
		for _, s := range spineIDs {
			addLink(leaf, s, TierToRAgg)
		}
	}

	t.adj = make([][]int, len(t.Nodes))
	for _, l := range t.Links {
		t.adj[l.A] = append(t.adj[l.A], l.ID)
		t.adj[l.B] = append(t.adj[l.B], l.ID)
	}
	return t, nil
}

// Oversubscription returns the leaf oversubscription ratio of a leaf-spine
// topology: host-facing bandwidth over spine-facing bandwidth per leaf.
// It returns an error on fat-trees (which are non-blocking by design).
func Oversubscription(t *Topology) (float64, error) {
	if t.K != 0 {
		return 0, fmt.Errorf("netsim: oversubscription is a leaf-spine property")
	}
	// Find any leaf and count its link types.
	for _, n := range t.Nodes {
		if n.Kind != NodeEdge {
			continue
		}
		var down, up float64
		for _, lid := range t.adj[n.ID] {
			l := t.Links[lid]
			switch l.Tier {
			case TierHostToR:
				down += l.RateBps
			case TierToRAgg:
				up += l.RateBps
			}
		}
		if up == 0 {
			return 0, errors.New("netsim: leaf has no uplinks")
		}
		return down / up, nil
	}
	return 0, errors.New("netsim: no leaves found")
}
