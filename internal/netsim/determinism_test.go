package netsim

import (
	"testing"

	"mosaic/internal/sim"
)

// Regression: a link kill that strands several flows must append their
// Stalled records in ascending flow-ID order. The pre-fix code iterated
// the active map directly, so with four stranded flows the record order
// was whatever the runtime's map hashing produced; 50 fresh simulations
// make a map-order leak essentially certain to surface.
func TestRerouteStalledRecordOrderDeterministic(t *testing.T) {
	for iter := 0; iter < 50; iter++ {
		topo, err := NewLeafSpine(2, 1, 4, 100e9)
		if err != nil {
			t.Fatal(err)
		}
		engine := sim.NewEngine(1)
		fs := NewFlowSim(topo, engine)
		hosts := topo.Hosts()
		// Four flows into h0; its single access link is their only route.
		for _, src := range []int{hosts[4], hosts[5], hosts[6], hosts[1]} {
			if _, err := fs.StartFlow(src, hosts[0], 1e9, 7); err != nil {
				t.Fatal(err)
			}
		}
		fs.FailLink(0) // h0's access link: all four flows stall
		recs := fs.Records()
		if len(recs) != 4 {
			t.Fatalf("iter %d: want 4 stalled records, got %d", iter, len(recs))
		}
		for i, r := range recs {
			if !r.Stalled {
				t.Fatalf("iter %d: record %d not stalled", iter, i)
			}
			if r.ID != i {
				t.Fatalf("iter %d: stalled records out of ID order: got %d at position %d", iter, r.ID, i)
			}
		}
	}
}

// Regression: two identical flows on disjoint paths finish at the same
// instant and must be recorded in flow-ID order, not completion-scan map
// order. Pre-fix, reschedule's `at < nextAt` comparison let whichever
// flow the map yielded first win the tie.
func TestCompletionTieBreakDeterministic(t *testing.T) {
	for iter := 0; iter < 50; iter++ {
		topo, err := NewLeafSpine(2, 1, 2, 100e9)
		if err != nil {
			t.Fatal(err)
		}
		engine := sim.NewEngine(1)
		fs := NewFlowSim(topo, engine)
		hosts := topo.Hosts()
		// h0→h1 stays on leaf 0, h2→h3 on leaf 1: fully disjoint links,
		// identical sizes, identical completion times.
		if _, err := fs.StartFlow(hosts[0], hosts[1], 1e9, 3); err != nil {
			t.Fatal(err)
		}
		if _, err := fs.StartFlow(hosts[2], hosts[3], 1e9, 3); err != nil {
			t.Fatal(err)
		}
		engine.Run()
		recs := fs.Records()
		if len(recs) != 2 {
			t.Fatalf("iter %d: want 2 records, got %d", iter, len(recs))
		}
		if recs[0].End != recs[1].End {
			t.Fatalf("iter %d: expected an exact completion tie, got %v vs %v", iter, recs[0].End, recs[1].End)
		}
		if recs[0].ID != 0 || recs[1].ID != 1 {
			t.Fatalf("iter %d: tie recorded out of ID order: [%d, %d]", iter, recs[0].ID, recs[1].ID)
		}
	}
}

// Regression (perf): capacity writes that change nothing — repeated
// RestoreLink, a Bridge re-sync publishing the fraction the link already
// has, a second FailLink — must not trigger a global reschedule.
func TestSetLinkCapacityFractionNoOpSkipsRecompute(t *testing.T) {
	topo, err := NewLeafSpine(2, 2, 2, 100e9)
	if err != nil {
		t.Fatal(err)
	}
	engine := sim.NewEngine(1)
	fs := NewFlowSim(topo, engine)
	hosts := topo.Hosts()
	if _, err := fs.StartFlow(hosts[0], hosts[2], 1e12, 5); err != nil {
		t.Fatal(err)
	}

	base := fs.Recomputes()
	fs.RestoreLink(2) // already at full capacity
	fs.RestoreLink(2)
	if got := fs.Recomputes(); got != base {
		t.Fatalf("no-op RestoreLink recomputed: %d -> %d", base, got)
	}

	fs.SetLinkCapacityFraction(2, 0.5)
	if got := fs.Recomputes(); got != base+1 {
		t.Fatalf("real change should recompute once: %d -> %d", base, got)
	}
	fs.SetLinkCapacityFraction(2, 0.5) // same fraction again
	if got := fs.Recomputes(); got != base+1 {
		t.Fatalf("repeated fraction recomputed: %d", got)
	}

	// A second kill of a dead link is a no-op too.
	dead := 3
	fs.FailLink(dead)
	n := fs.Recomputes()
	fs.FailLink(dead)
	if got := fs.Recomputes(); got != n {
		t.Fatalf("second FailLink recomputed: %d -> %d", n, got)
	}

	// The incremental engine honors the same contract (waterfill counter).
	ifs := NewIncFlowSim(topo, sim.NewEngine(1))
	if _, err := ifs.StartFlow(hosts[0], hosts[2], 1e12, 5); err != nil {
		t.Fatal(err)
	}
	w := ifs.Waterfills()
	ifs.RestoreLink(2)
	ifs.RestoreLink(2)
	if got := ifs.Waterfills(); got != w {
		t.Fatalf("incremental no-op RestoreLink waterfilled: %d -> %d", w, got)
	}
}
