package netsim

import (
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"testing"

	"mosaic/internal/refmodel"
	"mosaic/internal/sim"
)

// incTraceCase drives IncFlowSim through one randomized trace of
// arrivals, kills, restores, degrades and time advances, verifying after
// every mutation:
//
//  1. Conservation: per-link allocated rate ≤ capacity.
//  2. Max-min saturation: every positive-rate flow crosses a saturated
//     link.
//  3. Bitwise equivalence with refmodel.MaxMinRates, the always-global
//     progressive-filling twin.
func incTraceCase(t *testing.T, seed int64, size int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var (
		topo *Topology
		err  error
	)
	if seed%2 == 0 {
		topo, err = NewLeafSpine(2+rng.Intn(size), 1+rng.Intn(3), 1+rng.Intn(3), 100e9)
	} else {
		topo, err = NewFleet(2+rng.Intn(2), 1+rng.Intn(size), 1+rng.Intn(3), 1+rng.Intn(3), 100e9)
	}
	if err != nil {
		t.Fatal(err)
	}
	hosts := topo.Hosts()
	engine := sim.NewEngine(seed)
	fs := NewIncFlowSim(topo, engine)

	check := func(step int) {
		t.Helper()
		// Conservation + saturation from the engine's internal state.
		sumRates := make([]float64, len(fs.g.capacity))
		for _, f := range fs.active {
			for _, l := range f.Path {
				sumRates[l] += f.rate
			}
		}
		for l, sum := range sumRates {
			if cap := fs.g.capacity[l]; sum > cap*(1+1e-9)+1 {
				t.Fatalf("step %d: link %d oversubscribed: %.6g on %.6g", step, l, sum, cap)
			}
		}
		for id, f := range fs.active {
			if f.rate <= 0 {
				continue
			}
			saturated := false
			for _, l := range f.Path {
				if sumRates[l] >= fs.g.capacity[l]*(1-1e-9)-1 {
					saturated = true
					break
				}
			}
			if !saturated {
				t.Fatalf("step %d: flow %d (rate %.6g) has no saturated link — not max-min", step, id, f.rate)
			}
		}
		// Bitwise equivalence with the global reference.
		states := fs.FlowStates()
		flows := make([]refmodel.RefFlow, len(states))
		for i, st := range states {
			flows[i] = refmodel.RefFlow{ID: st.ID, Path: st.Path, Weight: st.Weight}
		}
		want := refmodel.MaxMinRates(fs.Capacities(), flows)
		for _, st := range states {
			if st.Rate != want[st.ID] {
				t.Fatalf("step %d: flow %d incremental rate %.17g != refmodel %.17g",
					step, st.ID, st.Rate, want[st.ID])
			}
		}
	}

	steps := 8 * size
	for s := 0; s < steps; s++ {
		switch op := rng.Intn(100); {
		case op < 45:
			src := hosts[rng.Intn(len(hosts))]
			dst := hosts[rng.Intn(len(hosts))]
			if src == dst {
				continue
			}
			w := 1.0
			if rng.Intn(4) == 0 {
				w = 0.5 + rng.Float64()*3
			}
			_, _ = fs.StartFlowWeighted(src, dst, (0.1+rng.Float64())*1e9, rng.Uint64(), w)
		case op < 62:
			engine.RunUntil(engine.Now() + sim.Time(rng.Float64()*0.02))
		case op < 74:
			fs.FailLink(rng.Intn(len(topo.Links)))
		case op < 86:
			fs.RestoreLink(rng.Intn(len(topo.Links)))
		default:
			fs.SetLinkCapacityFraction(rng.Intn(len(topo.Links)), rng.Float64())
		}
		check(s)
	}

	// Restore everything and drain: all flows must finish.
	for l := range topo.Links {
		fs.RestoreLink(l)
	}
	engine.Run()
	if n := fs.ActiveFlows(); n != 0 {
		t.Fatalf("%d flows still active after drain", n)
	}
	for _, r := range fs.Records() {
		if r.FCT() < 0 {
			t.Fatalf("flow %d has negative FCT %v", r.ID, r.FCT())
		}
	}
}

// TestIncFlowSimProperties is the tier-1 slice of the incremental-engine
// property suite.
func TestIncFlowSimProperties(t *testing.T) {
	for c := 0; c < 12; c++ {
		c := c
		t.Run(fmt.Sprintf("case%d", c), func(t *testing.T) {
			incTraceCase(t, 0x11C0+int64(c)*0x9E3779B1, 4+c%5)
		})
	}
}

// TestIncFlowSimDeepProperties is the verify-deep slice: many more
// randomized traces at larger sizes (MOSAIC_VERIFY_DEEP=1, run under
// -race by make verify-deep).
func TestIncFlowSimDeepProperties(t *testing.T) {
	if os.Getenv("MOSAIC_VERIFY_DEEP") == "" {
		t.Skip("set MOSAIC_VERIFY_DEEP=1 to run the deep incremental property suite")
	}
	for c := 0; c < 120; c++ {
		c := c
		t.Run(fmt.Sprintf("case%d", c), func(t *testing.T) {
			t.Parallel()
			incTraceCase(t, 0xDEE9+int64(c)*0x9E3779B1, 5+c%8)
		})
	}
}

// runFleetScenario drives a deterministic fleet workload — seeded
// arrivals, continuous per-link aging, scripted kills — at the given
// worker count and returns the event log and final records.
func runFleetScenario(workers int) ([]string, []FlowRecord) {
	topo, err := NewFleet(3, 3, 2, 2, 100e9)
	if err != nil {
		panic(err)
	}
	fs := NewFleetSim(topo, workers)
	rng := rand.New(rand.NewSource(99))
	hosts := topo.Hosts()
	for epoch := 0; epoch < 12; epoch++ {
		// Continuous aging on a deterministic link subset.
		for l := 0; l < len(topo.Links); l += 5 {
			frac := 1 - 0.02*float64(epoch)*float64(1+l%3)
			if frac < 0 {
				frac = 0
			}
			fs.SetLinkFraction(l, frac)
		}
		if epoch == 6 {
			fs.SetLinkFraction(1, 0) // hard kill mid-run
		}
		for i := 0; i < 30; i++ {
			src := hosts[rng.Intn(len(hosts))]
			dst := hosts[rng.Intn(len(hosts))]
			if src == dst {
				continue
			}
			_, _ = fs.Inject(src, dst, (0.5+rng.Float64())*25e9, rng.Uint64())
		}
		fs.Step(1)
	}
	return fs.EventLog(), fs.Records()
}

// TestFleetSimWorkerInvariance pins the sharded engine's determinism
// barrier: the event log and every record must be identical at 1, 3 and
// GOMAXPROCS workers.
func TestFleetSimWorkerInvariance(t *testing.T) {
	refLog, refRecs := runFleetScenario(1)
	if len(refLog) != 12 {
		t.Fatalf("want 12 epoch log lines, got %d", len(refLog))
	}
	if len(refRecs) == 0 {
		t.Fatal("scenario completed no flows; it exercises nothing")
	}
	for _, w := range []int{3, 0} {
		log, recs := runFleetScenario(w)
		if !reflect.DeepEqual(log, refLog) {
			t.Fatalf("workers=%d: event log diverged from workers=1", w)
		}
		if !reflect.DeepEqual(recs, refRecs) {
			t.Fatalf("workers=%d: records diverged from workers=1", w)
		}
	}
}

// TestFleetSimConservation checks capacity conservation after every
// epoch: on each link, the frozen rates of the flows indexed on it
// (locals plus pinned cross proxies) sum to at most its capacity.
func TestFleetSimConservation(t *testing.T) {
	topo, err := NewFleet(3, 3, 2, 2, 100e9)
	if err != nil {
		t.Fatal(err)
	}
	fs := NewFleetSim(topo, 0)
	rng := rand.New(rand.NewSource(7))
	hosts := topo.Hosts()
	for epoch := 0; epoch < 10; epoch++ {
		for l := 0; l < len(topo.Links); l += 4 {
			fs.SetLinkFraction(l, 1-0.03*float64(epoch))
		}
		for i := 0; i < 40; i++ {
			src := hosts[rng.Intn(len(hosts))]
			dst := hosts[rng.Intn(len(hosts))]
			if src == dst {
				continue
			}
			_, _ = fs.Inject(src, dst, (0.5+rng.Float64())*30e9, rng.Uint64())
		}
		fs.Step(1)
		for l := range topo.Links {
			sh := fs.shards[fs.shardOf[l]]
			var sum float64
			for _, ref := range sh.g.linkFlows[l] {
				sum += ref.f.rate
			}
			if cap := fs.capacity[l]; sum > cap*(1+1e-9)+1 {
				t.Fatalf("epoch %d: link %d oversubscribed: %.6g on %.6g", epoch, l, sum, cap)
			}
		}
	}
	if fs.ActiveFlows() == 0 {
		t.Fatal("no active flows at end; scenario too weak")
	}
}
