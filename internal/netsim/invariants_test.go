package netsim

import (
	"math/rand"
	"testing"
)

// The fleet invariant checker must hold at every resolved point of a
// churning fleet run — arrivals, cross-pod flows, degrades, kills, and
// restores — and must actually detect a violated allocation.
func TestFleetSimCheckInvariants(t *testing.T) {
	topo, err := NewFleet(3, 4, 2, 4, 100e9)
	if err != nil {
		t.Fatal(err)
	}
	fs := NewFleetSim(topo, 1)
	rng := rand.New(rand.NewSource(7))
	hosts := topo.Hosts()
	hostsPerPod := 4 * 4

	checks := 0
	fs.SetResolvedHook(func() {
		checks++
		if err := fs.CheckInvariants(); err != nil {
			t.Fatalf("epoch %d: %v", checks, err)
		}
	})

	for e := 0; e < 20; e++ {
		// Degrade a rotating link; kill one mid-run; restore later.
		fs.SetLinkFraction(e%len(topo.Links), 0.5)
		if e == 8 {
			fs.SetLinkFraction(2, 0)
		}
		if e == 14 {
			fs.SetLinkFraction(2, 1)
		}
		for i := 0; i < 30; i++ {
			src := rng.Intn(len(hosts))
			dst := rng.Intn(len(hosts))
			if i%4 == 0 { // force cross-pod traffic so proxies participate
				dst = ((src/hostsPerPod+1)%3)*hostsPerPod + rng.Intn(hostsPerPod)
			}
			if src == dst {
				continue
			}
			_, _ = fs.Inject(hosts[src], hosts[dst], 5e9+5e10*rng.Float64(), rng.Uint64())
		}
		fs.Step(0.01)
	}
	if checks != 20 {
		t.Fatalf("resolved hook ran %d times, want 20", checks)
	}
	if fs.CrossFlows() == 0 && fs.ActiveFlows() == 0 {
		t.Fatal("run drained completely; invariants were never stressed")
	}

	// Sabotage: inflate one local flow's rate past its bottleneck and the
	// checker must report oversubscription (or a broken max-min if the
	// inflated rate still fits under capacity).
	for _, sh := range fs.shards {
		for _, f := range sh.active {
			f.rate *= 1e6
			f.rate += 2 * 100e9
			if err := fs.CheckInvariants(); err == nil {
				t.Fatal("checker accepted an oversubscribed allocation")
			}
			return
		}
	}
	t.Fatal("no active local flow to sabotage")
}
