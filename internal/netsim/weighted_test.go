package netsim

import (
	"math"
	"testing"

	"mosaic/internal/sim"
)

// Two same-path flows with weights 2:1 must split the bottleneck 2:1
// and finish at the exact fluid-model instants: the heavy flow at
// 1.5·S/C, the light one (promoted to full rate afterwards) at 2·S/C.
func TestWeightedMaxMinSharing(t *testing.T) {
	topo := mustTree(t, 4)
	eng := sim.NewEngine(1)
	fs := NewFlowSim(topo, eng)
	h := topo.Hosts()

	const C = 800e9
	S := C // one second of bottleneck capacity
	heavy, err := fs.StartFlowWeighted(h[0], h[1], S, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	light, err := fs.StartFlowWeighted(h[0], h[1], S, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()

	fct := map[int]float64{}
	for _, r := range fs.Records() {
		if r.Stalled {
			t.Fatalf("flow %d stalled", r.ID)
		}
		fct[r.ID] = float64(r.FCT())
	}
	if got, want := fct[heavy], 1.5; math.Abs(got-want) > 1e-9 {
		t.Errorf("weight-2 flow FCT = %v, want %v", got, want)
	}
	if got, want := fct[light], 2.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("weight-1 flow FCT = %v, want %v", got, want)
	}
}

// With equal weights the weighted waterfill must reduce exactly to
// classic max-min: both flows finish together at 2·S/C.
func TestWeightedReducesToClassicMaxMin(t *testing.T) {
	topo := mustTree(t, 4)
	eng := sim.NewEngine(1)
	fs := NewFlowSim(topo, eng)
	h := topo.Hosts()

	const C = 800e9
	if _, err := fs.StartFlow(h[0], h[1], C, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.StartFlowWeighted(h[0], h[1], C, 0, 1); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	for _, r := range fs.Records() {
		if got := float64(r.FCT()); math.Abs(got-2.0) > 1e-9 {
			t.Errorf("flow %d FCT = %v, want 2.0", r.ID, got)
		}
	}
}

// Nonsense weights (zero, negative, NaN) must behave like weight 1
// rather than starving or monopolizing the link.
func TestWeightSanitized(t *testing.T) {
	for _, w := range []float64{0, -3, math.NaN()} {
		topo := mustTree(t, 4)
		eng := sim.NewEngine(1)
		fs := NewFlowSim(topo, eng)
		h := topo.Hosts()
		const C = 800e9
		if _, err := fs.StartFlowWeighted(h[0], h[1], C, 0, w); err != nil {
			t.Fatal(err)
		}
		if _, err := fs.StartFlowWeighted(h[0], h[1], C, 0, 1); err != nil {
			t.Fatal(err)
		}
		eng.Run()
		for _, r := range fs.Records() {
			if got := float64(r.FCT()); math.Abs(got-2.0) > 1e-9 {
				t.Errorf("weight %v: flow %d FCT = %v, want 2.0 (even split)", w, r.ID, got)
			}
		}
	}
}

// VCLinkMap must fan per-VC capacity publications out to exactly the
// mapped flow-sim links and ignore everything else.
func TestVCLinkMapRouting(t *testing.T) {
	topo := mustTree(t, 4)
	eng := sim.NewEngine(1)
	fs := NewFlowSim(topo, eng)
	m := NewVCLinkMap(fs)
	m.Map(7, 0, 0)
	m.Map(7, 1, 1)

	nominal0 := fs.LinkCapacity(0)
	nominal1 := fs.LinkCapacity(1)
	m.SetVCCapacityFraction(7, 0, 0.5)
	if got := fs.LinkCapacity(0); got != nominal0*0.5 {
		t.Errorf("mapped VC 0 capacity = %v, want %v", got, nominal0*0.5)
	}
	if got := fs.LinkCapacity(1); got != nominal1 {
		t.Errorf("VC 1 link rescaled by a VC 0 publication: %v", got)
	}
	m.SetVCCapacityFraction(7, 1, 0.25)
	if got := fs.LinkCapacity(1); got != nominal1*0.25 {
		t.Errorf("mapped VC 1 capacity = %v, want %v", got, nominal1*0.25)
	}
	// Unmapped VC and unknown MAC link: silently ignored.
	m.SetVCCapacityFraction(7, 9, 0.1)
	m.SetVCCapacityFraction(99, 0, 0.1)
	if fs.LinkCapacity(0) != nominal0*0.5 || fs.LinkCapacity(1) != nominal1*0.25 {
		t.Error("unmapped publication changed a link capacity")
	}
}
