package netsim

import (
	"container/heap"
	"math"
	"slices"
	"sort"

	"mosaic/internal/sim"
)

// This file is the incremental flow engine: the dirty-set max-min core
// (flowGraph) shared by IncFlowSim and the fleet shards, plus IncFlowSim
// itself — an event-driven, exactly-max-min simulator that only
// re-waterfills the connected component of links/flows an event can
// have affected, instead of FlowSim's full O(links × flows × pathlen)
// sweep on every event.
//
// Exactness: weighted max-min by progressive filling decomposes over
// connected components of the flow/link sharing graph — flows in
// disjoint components never contend for a link, so re-filling only the
// dirtied component yields the same allocation as a global fill. With
// links scanned in ascending index order and flows frozen in ascending
// ID order on both sides, the floating-point operation sequence per
// component is identical too, so the incremental rates equal
// refmodel.MaxMinRates bit for bit (pinned by the flowsim_inc diffcheck
// stage and the deep property suite).

// linkRef is one entry in a link's flow index: the flow plus the index
// of this link within the flow's Path, so a swap-delete can repair the
// moved entry's back-pointer in O(1).
type linkRef struct {
	f  *incFlow
	pi int32
}

// incFlow is a Flow plus the incremental-engine bookkeeping.
type incFlow struct {
	Flow
	pos  []int32 // pos[i] = index of this flow in linkFlows[Path[i]]
	ver  uint32  // valid completion-heap entry version
	mark uint64  // component-gather epoch marker
	seen uint64  // fleet per-epoch re-rated dedup marker

	// Fleet-shard fields: a cross-shard flow is represented inside each
	// shard by a proxy restricted to that shard's sub-path. A pinned
	// proxy's rate is fixed by the epoch barrier (the min of the shard
	// offers); the waterfill subtracts it from capacity instead of
	// assigning it. offer is the rate the last unpinned waterfill gave
	// the proxy — the shard's current bid for the cross flow.
	proxy  bool
	pinned bool
	offer  float64

	// filled marks a flow frozen (or pinned) within the current
	// waterfill, so the crossing scan over a bottleneck's link index can
	// skip it without consulting a side table.
	filled bool
}

// flowGraph is the incremental allocation core: per-link flow indices,
// a dirty-link set, and a component-restricted waterfill with reusable
// scratch. IncFlowSim drives one flowGraph from a discrete-event engine;
// the sharded fleet engine drives one per shard from its epoch barrier.
type flowGraph struct {
	topo     *Topology
	capacity []float64 // may be shared across shards; written only at barriers
	now      sim.Time

	linkFlows [][]linkRef

	dirty   []int
	dirtyIn []bool

	// Waterfill scratch, persistent across flushes. linkMark/epoch and
	// incFlow.mark implement O(component) visited sets with no clearing.
	remCap    []float64
	weightOn  []float64
	linkMark  []uint64
	epoch     uint64
	compLinks []int
	compFlows []*incFlow
	touched   []*incFlow // flows re-rated by the last flush
	cross     []*incFlow // per-round crossing-set scratch

	waterfills uint64 // component waterfill passes run
	rated      uint64 // flow-rate assignments performed
}

func newFlowGraph(t *Topology, capacity []float64) *flowGraph {
	n := len(t.Links)
	return &flowGraph{
		topo:      t,
		capacity:  capacity,
		linkFlows: make([][]linkRef, n),
		dirtyIn:   make([]bool, n),
		remCap:    make([]float64, n),
		weightOn:  make([]float64, n),
		linkMark:  make([]uint64, n),
	}
}

// markDirty queues a link for the next flush.
func (g *flowGraph) markDirty(l int) {
	if !g.dirtyIn[l] {
		g.dirtyIn[l] = true
		g.dirty = append(g.dirty, l)
	}
}

// addFlow indexes the flow on every link of its path and dirties them.
func (g *flowGraph) addFlow(f *incFlow) {
	if cap(f.pos) < len(f.Path) {
		f.pos = make([]int32, len(f.Path))
	}
	f.pos = f.pos[:len(f.Path)]
	for i, l := range f.Path {
		f.pos[i] = int32(len(g.linkFlows[l]))
		g.linkFlows[l] = append(g.linkFlows[l], linkRef{f: f, pi: int32(i)})
		g.markDirty(l)
	}
}

// removeFlow unindexes the flow (O(pathlen) swap-deletes) and dirties
// its links.
func (g *flowGraph) removeFlow(f *incFlow) {
	for i, l := range f.Path {
		s := g.linkFlows[l]
		p := f.pos[i]
		last := len(s) - 1
		moved := s[last]
		s[p] = moved
		moved.f.pos[moved.pi] = p
		s[last] = linkRef{}
		g.linkFlows[l] = s[:last]
		g.markDirty(l)
	}
}

// settle progresses a flow's remaining bits to g.now.
func (g *flowGraph) settle(f *incFlow) {
	elapsed := float64(g.now - f.lastTouch)
	if elapsed > 0 && f.rate > 0 {
		f.remaining -= f.rate * elapsed
		if f.remaining < 0 {
			f.remaining = 0
		}
	}
	f.lastTouch = g.now
}

// flush re-waterfills every connected component reachable from the
// dirty links and returns the flows whose rates were reassigned (the
// caller refreshes their completion entries). Links and flows outside
// the dirty components keep their rates: no flow there shares a link
// with a dirtied flow, so its max-min allocation cannot have changed.
func (g *flowGraph) flush(unpinProxies bool) []*incFlow {
	g.touched = g.touched[:0]
	if len(g.dirty) == 0 {
		return g.touched
	}
	g.epoch++
	for _, l := range g.dirty {
		g.dirtyIn[l] = false
	}
	for _, seed := range g.dirty {
		if g.linkMark[seed] == g.epoch {
			continue // already swept into an earlier component this flush
		}
		g.gatherComponent(seed)
		g.waterfillComponent(unpinProxies)
	}
	g.dirty = g.dirty[:0]
	return g.touched
}

// gatherComponent BFSes the link/flow sharing graph from seed into
// compLinks/compFlows (both reset first).
func (g *flowGraph) gatherComponent(seed int) {
	g.compLinks = g.compLinks[:0]
	g.compFlows = g.compFlows[:0]
	g.linkMark[seed] = g.epoch
	g.compLinks = append(g.compLinks, seed)
	for qi := 0; qi < len(g.compLinks); qi++ {
		l := g.compLinks[qi]
		for _, ref := range g.linkFlows[l] {
			f := ref.f
			if f.mark == g.epoch {
				continue
			}
			f.mark = g.epoch
			g.compFlows = append(g.compFlows, f)
			for _, fl := range f.Path {
				if g.linkMark[fl] != g.epoch {
					g.linkMark[fl] = g.epoch
					g.compLinks = append(g.compLinks, fl)
				}
			}
		}
	}
}

// waterfillComponent runs progressive-filling weighted max-min fairness
// restricted to the gathered component, with the same deterministic
// ordering as the global algorithm: links scanned ascending, flows
// frozen ascending by ID. Pinned proxies contribute a fixed demand
// (capacity subtracted up front) instead of participating in the fill;
// with unpinProxies set, proxies join the fill as ordinary flows and
// their resulting rate is recorded as the shard's offer.
func (g *flowGraph) waterfillComponent(unpinProxies bool) {
	flows := g.compFlows
	if len(flows) == 0 {
		return
	}
	g.waterfills++
	slices.SortFunc(flows, func(a, b *incFlow) int { return a.ID - b.ID })
	links := g.compLinks
	slices.Sort(links)
	for _, l := range links {
		g.remCap[l] = g.capacity[l]
		g.weightOn[l] = 0
	}

	unfrozen := flows[:0:len(flows)] // reuse backing array; flows stays intact via touched append below
	// First pass: settle participants, subtract pinned demand, build the
	// unfrozen working set.
	for _, f := range flows {
		if f.proxy && unpinProxies {
			f.pinned = false
		}
		if !f.proxy {
			g.settle(f)
		}
		if f.pinned {
			f.filled = true
			for _, l := range f.Path {
				g.remCap[l] -= f.rate
				if g.remCap[l] < 0 {
					g.remCap[l] = 0
				}
			}
			continue
		}
		f.rate = 0
		f.filled = false
		unfrozen = append(unfrozen, f)
	}
	g.rated += uint64(len(unfrozen))
	g.touched = append(g.touched, unfrozen...)
	for _, f := range unfrozen {
		for _, l := range f.Path {
			g.weightOn[l] += f.weight()
		}
	}

	// Progressive filling. The crossing set of each bottleneck comes
	// from the per-link flow index — O(crossing) per round instead of a
	// scan of every unfrozen flow — sorted by ID so the freeze order
	// (and therefore every float operation) matches the global reference
	// bit for bit.
	left := len(unfrozen)
	for left > 0 {
		bottleneck := -1
		best := math.Inf(1)
		for _, l := range links {
			if g.weightOn[l] <= 0 {
				continue
			}
			if fair := g.remCap[l] / g.weightOn[l]; fair < best {
				best = fair
				bottleneck = l
			}
		}
		if bottleneck < 0 {
			break
		}
		cross := g.cross[:0]
		for _, ref := range g.linkFlows[bottleneck] {
			if !ref.f.filled {
				cross = append(cross, ref.f)
			}
		}
		g.cross = cross
		if len(cross) == 0 {
			// Only floating-point weight residue on the bottleneck:
			// retire it and keep filling the rest of the component.
			g.weightOn[bottleneck] = 0
			continue
		}
		slices.SortFunc(cross, func(a, b *incFlow) int { return a.ID - b.ID })
		for _, f := range cross {
			f.rate = best * f.weight()
			if f.proxy {
				f.offer = f.rate
			}
			f.filled = true
			left--
			for _, l := range f.Path {
				g.remCap[l] -= f.rate
				if g.remCap[l] < 0 {
					g.remCap[l] = 0
				}
				g.weightOn[l] -= f.weight()
			}
		}
	}
}

// completion is a lazily-invalidated completion-heap entry: it fires
// only if the flow is still active and its version matches (any rate
// change bumps ver and pushes a fresh entry). Ordering is (time, flow
// ID): two flows finishing at the same instant always complete in ID
// order, never map order.
type completion struct {
	at  sim.Time
	id  int
	ver uint32
}

type completionHeap []completion

func (h completionHeap) Len() int { return len(h) }
func (h completionHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].id < h[j].id
}
func (h completionHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *completionHeap) Push(x any)   { *h = append(*h, x.(completion)) }
func (h *completionHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// IncFlowSim is the incremental counterpart of FlowSim: the same
// max-min fluid model and discrete-event integration, but each arrival,
// completion, or capacity change re-waterfills only the affected
// component (per-link flow indices + dirty set) and the next completion
// comes from a heap instead of an O(flows) scan. It implements the same
// capacity-sink surface as FlowSim, so mac.Bridge can drive it.
type IncFlowSim struct {
	Topo   *Topology
	Engine *sim.Engine

	g       *flowGraph
	active  map[int]*incFlow
	nextID  int
	records []FlowRecord

	h         completionHeap
	pending   sim.Canceler
	pendingAt sim.Time
	batch     bool
}

// NewIncFlowSim builds an incremental simulator over the topology with
// every link at its nominal rate.
func NewIncFlowSim(t *Topology, engine *sim.Engine) *IncFlowSim {
	capacity := make([]float64, len(t.Links))
	for i, l := range t.Links {
		capacity[i] = l.RateBps
	}
	return &IncFlowSim{
		Topo:   t,
		Engine: engine,
		g:      newFlowGraph(t, capacity),
		active: make(map[int]*incFlow),
	}
}

// LinkCapacity returns the current capacity of a link.
func (fs *IncFlowSim) LinkCapacity(linkID int) float64 { return fs.g.capacity[linkID] }

// ActiveFlows returns the number of in-flight flows.
func (fs *IncFlowSim) ActiveFlows() int { return len(fs.active) }

// Records returns completed/stalled flow records.
func (fs *IncFlowSim) Records() []FlowRecord { return fs.records }

// Waterfills returns how many component waterfill passes have run.
func (fs *IncFlowSim) Waterfills() uint64 { return fs.g.waterfills }

// RatedFlows returns the cumulative number of per-flow rate assignments
// — the incremental engine's work metric, directly comparable to
// FlowSim's recomputes × active flows.
func (fs *IncFlowSim) RatedFlows() uint64 { return fs.g.rated }

// StartFlow injects a weight-1 flow now (ECMP path from the hash).
func (fs *IncFlowSim) StartFlow(src, dst int, sizeBits float64, hash uint64) (int, error) {
	return fs.StartFlowWeighted(src, dst, sizeBits, hash, 1)
}

// StartFlowWeighted injects a flow with a max-min scheduling weight.
func (fs *IncFlowSim) StartFlowWeighted(src, dst int, sizeBits float64, hash uint64, weight float64) (int, error) {
	if sizeBits <= 0 {
		return 0, errFlowSize
	}
	if weight <= 0 || weight != weight {
		weight = 1
	}
	path, err := routeAvoidingDead(fs.Topo, fs.g.capacity, src, dst, hash)
	if err != nil {
		return 0, err
	}
	id := fs.nextID
	fs.nextID++
	f := &incFlow{Flow: Flow{
		ID: id, Src: src, Dst: dst, SizeBits: sizeBits,
		Path: path, Hash: hash, Weight: weight,
		remaining: sizeBits,
		start:     fs.Engine.Now(),
		lastTouch: fs.Engine.Now(),
	}}
	fs.active[id] = f
	fs.g.addFlow(f)
	fs.flush()
	return id, nil
}

// BeginBatch suspends rate recomputation: arrivals and capacity changes
// accumulate in the dirty set and a single CommitBatch waterfills each
// affected component once. Use it to apply a burst of simultaneous
// events (a correlated failure, a fleet epoch) at O(components) instead
// of O(events × components).
func (fs *IncFlowSim) BeginBatch() { fs.batch = true }

// CommitBatch ends a batch and recomputes the dirtied components.
func (fs *IncFlowSim) CommitBatch() {
	fs.batch = false
	fs.flush()
}

// SetLinkCapacityFraction scales a link to frac of its nominal rate,
// with FlowSim's exact clamping semantics, the no-op early return, and
// component-local recomputation. frac=0 kills the link and reroutes.
func (fs *IncFlowSim) SetLinkCapacityFraction(linkID int, frac float64) {
	if linkID < 0 || linkID >= len(fs.g.capacity) {
		return
	}
	if frac < 0 || frac != frac {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	newCap := fs.Topo.Links[linkID].RateBps * frac
	if newCap == fs.g.capacity[linkID] {
		return
	}
	fs.g.capacity[linkID] = newCap
	fs.g.markDirty(linkID)
	if newCap == 0 {
		fs.rerouteThrough(linkID)
	}
	fs.flush()
}

// FailLink kills a link entirely and reroutes affected flows.
func (fs *IncFlowSim) FailLink(linkID int) { fs.SetLinkCapacityFraction(linkID, 0) }

// RestoreLink returns a link to full capacity.
func (fs *IncFlowSim) RestoreLink(linkID int) { fs.SetLinkCapacityFraction(linkID, 1) }

// rerouteThrough re-paths the flows crossing a dead link in ascending
// flow-ID order (the determinism discipline the FlowSim fix installed).
func (fs *IncFlowSim) rerouteThrough(linkID int) {
	refs := fs.g.linkFlows[linkID]
	crossing := make([]*incFlow, len(refs))
	for i, ref := range refs {
		crossing[i] = ref.f
	}
	sort.Slice(crossing, func(i, j int) bool { return crossing[i].ID < crossing[j].ID })
	fs.g.now = fs.Engine.Now()
	for _, f := range crossing {
		fs.g.settle(f)
		path, err := routeAvoidingDead(fs.Topo, fs.g.capacity, f.Src, f.Dst, f.Hash+1)
		fs.g.removeFlow(f)
		if err != nil {
			fs.records = append(fs.records, FlowRecord{
				ID: f.ID, SizeBits: f.SizeBits, Start: f.start,
				End: fs.Engine.Now(), Stalled: true,
			})
			delete(fs.active, f.ID)
			f.ver++ // invalidate any queued completion
			continue
		}
		f.Path = path
		fs.g.addFlow(f)
	}
}

// flush recomputes dirty components (unless batching) and refreshes the
// completion entries of every re-rated flow.
func (fs *IncFlowSim) flush() {
	if fs.batch {
		return
	}
	fs.g.now = fs.Engine.Now()
	touched := fs.g.flush(false)
	for _, f := range touched {
		f.ver++
		if f.rate > 0 {
			heap.Push(&fs.h, completion{
				at:  fs.Engine.Now() + sim.Time(f.remaining/f.rate),
				id:  f.ID,
				ver: f.ver,
			})
		}
	}
	if len(fs.h) > 4*len(fs.active)+64 {
		fs.compact()
	}
	fs.rescheduleHead()
}

// compact rebuilds the heap dropping stale entries.
func (fs *IncFlowSim) compact() {
	live := fs.h[:0]
	for _, c := range fs.h {
		if f, ok := fs.active[c.id]; ok && f.ver == c.ver {
			live = append(live, c)
		}
	}
	fs.h = live
	heap.Init(&fs.h)
}

// rescheduleHead points the single pending engine event at the heap's
// first valid entry.
func (fs *IncFlowSim) rescheduleHead() {
	for len(fs.h) > 0 {
		head := fs.h[0]
		if f, ok := fs.active[head.id]; ok && f.ver == head.ver {
			break
		}
		heap.Pop(&fs.h)
	}
	if len(fs.h) == 0 {
		if fs.pending != nil {
			fs.pending()
			fs.pending = nil
		}
		return
	}
	at := fs.h[0].at
	if fs.pending != nil {
		if fs.pendingAt == at {
			return
		}
		fs.pending()
	}
	fs.pendingAt = at
	fs.pending = fs.Engine.Schedule(at, fs.onCompletion)
}

// onCompletion completes the (single) flow at the heap head, then
// recomputes its component and reschedules. A simultaneous second
// completion fires as its own engine event, in flow-ID order.
func (fs *IncFlowSim) onCompletion() {
	fs.pending = nil
	for len(fs.h) > 0 {
		head := fs.h[0]
		f, ok := fs.active[head.id]
		if !ok || f.ver != head.ver {
			heap.Pop(&fs.h)
			continue
		}
		if head.at > fs.Engine.Now() {
			break // head changed since scheduling; push the event later
		}
		heap.Pop(&fs.h)
		fs.g.now = fs.Engine.Now()
		fs.g.settle(f)
		fs.records = append(fs.records, FlowRecord{
			ID: f.ID, SizeBits: f.SizeBits, Start: f.start, End: fs.Engine.Now(),
		})
		delete(fs.active, f.ID)
		fs.g.removeFlow(f)
		break
	}
	fs.flush()
}

// FlowState is a read-only view of one active flow's allocation, the
// exchange format for the differential and property harnesses.
type FlowState struct {
	ID     int
	Path   []int
	Weight float64
	Rate   float64
}

// FlowStates returns the active flows sorted by ID.
func (fs *IncFlowSim) FlowStates() []FlowState {
	out := make([]FlowState, 0, len(fs.active))
	for _, f := range fs.active {
		out = append(out, FlowState{ID: f.ID, Path: f.Path, Weight: f.weight(), Rate: f.rate})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Capacities returns a copy of the current per-link capacities.
func (fs *IncFlowSim) Capacities() []float64 {
	out := make([]float64, len(fs.g.capacity))
	copy(out, fs.g.capacity)
	return out
}
