package netsim

import (
	"math/rand"
	"testing"

	"mosaic/internal/sim"
)

// Capacity-conservation and max-min properties of the fluid flow
// simulator, checked from inside the package so the test can read the
// solver's actual per-flow rates. At every checkpoint:
//
//  1. Conservation: on every link, the rates of the flows crossing it
//     sum to no more than the link's current capacity.
//  2. Bottleneck saturation (max-min): every active flow has at least
//     one saturated link on its path — otherwise the progressive-filling
//     allocation could raise it, which would not be max-min fair.
func TestFlowSimCapacityConservation(t *testing.T) {
	topo, err := NewFatTree(4, 100e9)
	if err != nil {
		t.Fatal(err)
	}
	engine := sim.NewEngine(42)
	fs := NewFlowSim(topo, engine)
	rng := rand.New(rand.NewSource(43))
	hosts := topo.Hosts()

	check := func(when string) {
		t.Helper()
		sumRates := make([]float64, len(fs.capacity))
		for _, f := range fs.active {
			for _, l := range f.Path {
				sumRates[l] += f.rate
			}
		}
		for l, sum := range sumRates {
			if cap := fs.capacity[l]; sum > cap*(1+1e-9)+1 {
				t.Fatalf("%s: link %d oversubscribed: %.3g bps allocated on %.3g bps capacity", when, l, sum, cap)
			}
		}
		for id, f := range fs.active {
			saturated := false
			for _, l := range f.Path {
				if sumRates[l] >= fs.capacity[l]*(1-1e-9)-1 {
					saturated = true
					break
				}
			}
			if !saturated {
				t.Fatalf("%s: flow %d (rate %.3g) has no saturated link on its path — allocation is not max-min",
					when, id, f.rate)
			}
		}
	}

	// Phase 1: a burst of flows between random host pairs.
	for i := 0; i < 40; i++ {
		src := hosts[rng.Intn(len(hosts))]
		dst := hosts[rng.Intn(len(hosts))]
		if src == dst {
			continue
		}
		if _, err := fs.StartFlow(src, dst, 1e9+rng.Float64()*1e10, rng.Uint64()); err != nil {
			t.Fatal(err)
		}
		check("after arrival")
	}

	// Phase 2: let some flows complete, checking at each event.
	for i := 0; i < 30 && engine.Pending() > 0; i++ {
		engine.Step()
		check("after completion")
	}

	// Phase 3: degrade and restore random links (the MAC bridge's view of
	// PHY sparing), re-checking the invariants after each capacity change.
	for i := 0; i < 10; i++ {
		l := rng.Intn(len(fs.capacity))
		fs.SetLinkCapacityFraction(l, []float64{0.5, 0.96, 0}[rng.Intn(3)])
		check("after degrade")
		fs.SetLinkCapacityFraction(l, 1)
		check("after restore")
	}

	// Drain: every flow must eventually finish once capacity is restored,
	// and no record may show a negative completion time.
	engine.Run()
	if n := fs.ActiveFlows(); n != 0 {
		t.Fatalf("%d flows still active after drain", n)
	}
	for _, r := range fs.Records() {
		if r.FCT() < 0 {
			t.Fatalf("flow %d has negative FCT %v", r.ID, r.FCT())
		}
	}
}
