package netsim

import (
	"testing"

	"mosaic/internal/sim"
)

func TestLeafSpineShape(t *testing.T) {
	topo, err := NewLeafSpine(8, 4, 16, 800e9)
	if err != nil {
		t.Fatal(err)
	}
	counts := topo.CountNodes()
	if counts[NodeHost] != 128 || counts[NodeEdge] != 8 || counts[NodeAgg] != 4 {
		t.Fatalf("counts = %v", counts)
	}
	if counts[NodeCore] != 0 {
		t.Error("leaf-spine has no core tier")
	}
	// Links: 128 host + 8*4 uplinks.
	if len(topo.Links) != 128+32 {
		t.Errorf("links = %d", len(topo.Links))
	}
}

func TestLeafSpineValidation(t *testing.T) {
	if _, err := NewLeafSpine(0, 4, 16, 1e9); err == nil {
		t.Error("zero leaves accepted")
	}
	if _, err := NewLeafSpine(8, 4, 16, 0); err == nil {
		t.Error("zero rate accepted")
	}
}

func TestLeafSpinePaths(t *testing.T) {
	topo, err := NewLeafSpine(4, 3, 8, 800e9)
	if err != nil {
		t.Fatal(err)
	}
	h := topo.Hosts()
	// Same leaf: 2 hops.
	p, err := topo.Path(h[0], h[1], 0)
	if err != nil || len(p) != 2 {
		t.Errorf("same-leaf path = %v, %v", p, err)
	}
	// Cross-leaf: 4 hops through a spine.
	p, err = topo.Path(h[0], h[20], 0)
	if err != nil || len(p) != 4 {
		t.Errorf("cross-leaf path = %v, %v", p, err)
	}
	// Walk it for connectivity.
	at := h[0]
	for _, lid := range p {
		l := topo.Links[lid]
		if l.A != at && l.B != at {
			t.Fatalf("disconnected at %d", at)
		}
		at = topo.peer(l, at)
	}
	if at != h[20] {
		t.Fatal("path does not reach destination")
	}
}

func TestLeafSpineECMPAcrossSpines(t *testing.T) {
	topo, _ := NewLeafSpine(4, 4, 8, 800e9)
	h := topo.Hosts()
	spines := map[int]bool{}
	for hash := uint64(0); hash < 32; hash++ {
		p, err := topo.Path(h[0], h[20], hash)
		if err != nil {
			t.Fatal(err)
		}
		spines[p[1]] = true
	}
	if len(spines) < 3 {
		t.Errorf("ECMP used only %d of 4 spines", len(spines))
	}
}

func TestOversubscription(t *testing.T) {
	topo, _ := NewLeafSpine(8, 4, 16, 800e9)
	ratio, err := Oversubscription(topo)
	if err != nil {
		t.Fatal(err)
	}
	if ratio != 4 { // 16 host links over 4 uplinks
		t.Errorf("oversubscription = %v, want 4", ratio)
	}
	ft, _ := NewFatTree(4, 800e9)
	if _, err := Oversubscription(ft); err == nil {
		t.Error("fat-tree oversubscription should error")
	}
}

func TestLeafSpineFlowsAndFailover(t *testing.T) {
	topo, err := NewLeafSpine(4, 2, 4, 800e9)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(1)
	fs := NewFlowSim(topo, eng)
	h := topo.Hosts()
	if _, err := fs.StartFlow(h[0], h[12], 800e9*0.5, 0); err != nil {
		t.Fatal(err)
	}
	// Kill the spine uplink the flow is on; it must reroute to the other
	// spine and complete.
	var used int
	for _, f := range fs.active {
		used = f.Path[1]
	}
	eng.Schedule(0.1, func() { fs.FailLink(used) })
	eng.Run()
	recs := fs.Records()
	if len(recs) != 1 || recs[0].Stalled {
		t.Fatalf("flow did not survive spine failure: %+v", recs)
	}
}

func TestLeafSpineAnalyze(t *testing.T) {
	topo, _ := NewLeafSpine(8, 4, 16, 800e9)
	for _, plan := range Plans() {
		rep, err := Analyze(topo, plan, 800e9)
		if err != nil {
			t.Fatalf("%s: %v", plan.Name, err)
		}
		if rep.PowerW <= 0 {
			t.Errorf("%s: no power", plan.Name)
		}
	}
}
