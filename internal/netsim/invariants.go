package netsim

import "fmt"

// This file is the fleet engine's self-check surface: an exported
// invariant validator over the sharded allocation, callable at the
// instant rates are globally consistent. The scenario conformance
// harness (internal/scenario) asserts these properties every epoch for
// every registered scenario; the deep netsim property suite asserts the
// same two properties for IncFlowSim.

// SetResolvedHook installs fn to run inside every Step, at the one
// sequential point where the epoch's rates are fully resolved: after
// phase C's corrective waterfill, before cross completions retire
// proxies and the shard heaps drain. At that instant every dirty
// component has been re-filled, so conservation and per-shard max-min
// hold exactly — the natural place to call CheckInvariants. nil removes
// the hook.
func (fs *FleetSim) SetResolvedHook(fn func()) { fs.onResolved = fn }

// CheckInvariants validates the two fluid-model properties on the
// current allocation:
//
//  1. Conservation: on every link, the rates of the flows crossing it
//     (local flows and pinned cross-flow proxies alike) sum to no more
//     than the link's current capacity.
//  2. Bottleneck saturation (max-min): every active local flow has at
//     least one saturated link on its path — otherwise progressive
//     filling could raise it. Cross-flow proxies are exempt: a proxy is
//     pinned to the min of its shards' offers, which legitimately
//     leaves the non-binding shard's links unsaturated (the documented
//     bounded-staleness of the fleet model).
//
// Tolerances match the package's conservation test: 1e-9 relative plus
// 1 bps absolute, so float accumulation over a fleet cannot produce a
// spurious failure. It returns nil when both properties hold.
//
// Call it from a SetResolvedHook: between barriers (after Step returns)
// completed flows have already freed capacity without a re-fill, so the
// saturation property transiently and legitimately does not hold.
func (fs *FleetSim) CheckInvariants() error {
	// Accumulate per-link allocated rate from each shard's link index.
	// A link is only ever indexed by its owning shard, so no flow is
	// double-counted (a cross flow appears once per shard, as the proxy
	// restricted to that shard's links).
	sum := make([]float64, len(fs.capacity))
	for _, sh := range fs.shards {
		for l, refs := range sh.g.linkFlows {
			for _, ref := range refs {
				sum[l] += ref.f.rate
			}
		}
	}
	for l, s := range sum {
		if cap := fs.capacity[l]; s > cap*(1+1e-9)+1 {
			return fmt.Errorf("netsim: link %d oversubscribed: %.6g bps allocated on %.6g bps capacity", l, s, cap)
		}
	}
	saturated := func(l int) bool {
		return sum[l] >= fs.capacity[l]*(1-1e-9)-1
	}
	for _, sh := range fs.shards {
		for id, f := range sh.active {
			ok := false
			for _, l := range f.Path {
				if saturated(l) {
					ok = true
					break
				}
			}
			if !ok {
				return fmt.Errorf("netsim: flow %d (rate %.6g) has no saturated link on its path — allocation is not max-min", id, f.rate)
			}
		}
	}
	return nil
}
