package netsim

import (
	"math"
	"testing"

	"mosaic/internal/power"
	"mosaic/internal/sim"
)

func mustTree(t *testing.T, k int) *Topology {
	t.Helper()
	topo, err := NewFatTree(k, 800e9)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestFatTreeShape(t *testing.T) {
	for _, k := range []int{4, 8} {
		topo := mustTree(t, k)
		counts := topo.CountNodes()
		if counts[NodeHost] != k*k*k/4 {
			t.Errorf("k=%d: hosts = %d, want %d", k, counts[NodeHost], k*k*k/4)
		}
		if counts[NodeCore] != k*k/4 {
			t.Errorf("k=%d: cores = %d, want %d", k, counts[NodeCore], k*k/4)
		}
		if counts[NodeEdge] != k*k/2 || counts[NodeAgg] != k*k/2 {
			t.Errorf("k=%d: edge/agg = %d/%d, want %d", k, counts[NodeEdge], counts[NodeAgg], k*k/2)
		}
		// Link count: hosts + edge-agg (k pods × (k/2)²) + agg-core (k pods × (k/2)²).
		want := k*k*k/4 + k*(k/2)*(k/2)*2
		if len(topo.Links) != want {
			t.Errorf("k=%d: links = %d, want %d", k, len(topo.Links), want)
		}
		if topo.NumHosts() != k*k*k/4 {
			t.Errorf("NumHosts mismatch")
		}
	}
}

func TestFatTreeRejectsBadK(t *testing.T) {
	for _, k := range []int{0, 1, 3, 5} {
		if _, err := NewFatTree(k, 1e9); err == nil {
			t.Errorf("k=%d accepted", k)
		}
	}
	if _, err := NewFatTree(4, 0); err == nil {
		t.Error("zero rate accepted")
	}
}

func TestPathsValid(t *testing.T) {
	topo := mustTree(t, 4)
	hosts := topo.Hosts()
	for hash := uint64(0); hash < 8; hash++ {
		for _, dst := range []int{1, 5, 15} {
			path, err := topo.Path(hosts[0], hosts[dst], hash)
			if err != nil {
				t.Fatalf("path to host %d: %v", dst, err)
			}
			// Path must be connected: walk it.
			at := hosts[0]
			for _, lid := range path {
				l := topo.Links[lid]
				if l.A != at && l.B != at {
					t.Fatalf("disconnected path at node %d, link %v", at, l)
				}
				at = topo.peer(l, at)
			}
			if at != hosts[dst] {
				t.Fatalf("path ends at %d, want %d", at, hosts[dst])
			}
		}
	}
}

func TestPathLengths(t *testing.T) {
	topo := mustTree(t, 4)
	h := topo.Hosts()
	// Same edge switch: 2 hops.
	p, err := topo.Path(h[0], h[1], 0)
	if err != nil || len(p) != 2 {
		t.Errorf("same-edge path = %v, %v", p, err)
	}
	// Same pod, different edge: 4 hops.
	p, err = topo.Path(h[0], h[2], 0)
	if err != nil || len(p) != 4 {
		t.Errorf("same-pod path = %v, %v", p, err)
	}
	// Cross-pod: 6 hops.
	p, err = topo.Path(h[0], h[15], 0)
	if err != nil || len(p) != 6 {
		t.Errorf("cross-pod path = %v, %v", p, err)
	}
	// Same host: empty.
	p, err = topo.Path(h[0], h[0], 0)
	if err != nil || len(p) != 0 {
		t.Errorf("self path = %v, %v", p, err)
	}
}

func TestPathErrors(t *testing.T) {
	topo := mustTree(t, 4)
	if _, err := topo.Path(-1, 0, 0); err == nil {
		t.Error("negative node accepted")
	}
	// Node 0 is a core switch, not a host.
	if _, err := topo.Path(0, topo.Hosts()[0], 0); err == nil {
		t.Error("non-host endpoint accepted")
	}
}

func TestECMPSpreads(t *testing.T) {
	topo := mustTree(t, 8)
	h := topo.Hosts()
	seen := map[int]bool{}
	for hash := uint64(0); hash < 64; hash++ {
		p, err := topo.Path(h[0], h[len(h)-1], hash)
		if err != nil {
			t.Fatal(err)
		}
		seen[p[1]] = true // the chosen edge->agg link
	}
	if len(seen) < 2 {
		t.Error("ECMP hashing never spread across agg uplinks")
	}
}

func TestTechPlansValid(t *testing.T) {
	for _, p := range Plans() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestInfeasiblePlanRejected(t *testing.T) {
	bad := TechPlan{
		Name: "copper-everywhere",
		ByTier: map[Tier]power.Tech{
			TierHostToR: power.DAC,
			TierToRAgg:  power.DAC, // 2 m copper cannot span 20 m
			TierAggCore: power.DR,
		},
	}
	if err := bad.Validate(); err == nil {
		t.Error("copper at tor-agg should be infeasible")
	}
	missing := TechPlan{Name: "partial", ByTier: map[Tier]power.Tech{}}
	if err := missing.Validate(); err == nil {
		t.Error("plan with missing tiers accepted")
	}
}

func TestAnalyzePowerOrdering(t *testing.T) {
	topo := mustTree(t, 8)
	baseline, err := Analyze(topo, CopperOpticsBaseline(), 800e9)
	if err != nil {
		t.Fatal(err)
	}
	allOpt, err := Analyze(topo, AllOptics(), 800e9)
	if err != nil {
		t.Fatal(err)
	}
	mosaic, err := Analyze(topo, MosaicPlan(), 800e9)
	if err != nil {
		t.Fatal(err)
	}
	// All-optics burns the most; Mosaic must beat it decisively and also
	// beat the DAC+optics mix (it replaces the AOC/DR tiers).
	if !(mosaic.PowerW < allOpt.PowerW) {
		t.Errorf("mosaic %v should beat all-optics %v", mosaic.PowerW, allOpt.PowerW)
	}
	if !(mosaic.PowerW < baseline.PowerW) {
		t.Errorf("mosaic %v should beat DAC+optics %v", mosaic.PowerW, baseline.PowerW)
	}
	// Failures: Mosaic plan should have far fewer expected failures than
	// all-optics (laser-dominated).
	if !(mosaic.FailuresPerYear < allOpt.FailuresPerYear) {
		t.Errorf("mosaic failures %v should beat all-optics %v",
			mosaic.FailuresPerYear, allOpt.FailuresPerYear)
	}
	if mosaic.Links != len(topo.Links) {
		t.Error("link count mismatch")
	}
}

func TestAnalyzeTCO(t *testing.T) {
	topo := mustTree(t, 8)
	rep, err := Analyze(topo, MosaicPlan(), 800e9)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CapexUSD <= 0 {
		t.Error("no capex accumulated")
	}
	if rep.OpexUSDPerYear() <= 0 {
		t.Error("no opex")
	}
	// TCO grows with years and exceeds capex alone.
	if !(rep.TCOUSD(5) > rep.TCOUSD(1) && rep.TCOUSD(1) > rep.CapexUSD) {
		t.Error("TCO not monotone in years")
	}
	// Opex sanity: power × PUE × hours × price.
	want := rep.PowerW * 1.5 / 1000 * 8766 * USDPerKWh
	if got := rep.OpexUSDPerYear(); got != want {
		t.Errorf("opex = %v, want %v", got, want)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	topo := mustTree(t, 4)
	if _, err := Analyze(nil, MosaicPlan(), 800e9); err == nil {
		t.Error("nil topology accepted")
	}
	if _, err := Analyze(topo, MosaicPlan(), 5e9); err == nil {
		t.Error("unsupported rate accepted")
	}
	bad := TechPlan{Name: "x", ByTier: map[Tier]power.Tech{}}
	if _, err := Analyze(topo, bad, 800e9); err == nil {
		t.Error("invalid plan accepted")
	}
}

// --- flow simulator ---

func TestSingleFlowGetsLineRate(t *testing.T) {
	topo := mustTree(t, 4)
	eng := sim.NewEngine(1)
	fs := NewFlowSim(topo, eng)
	h := topo.Hosts()
	size := 800e9 * 0.5 // half a second at line rate
	if _, err := fs.StartFlow(h[0], h[15], size, 0); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	recs := fs.Records()
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}
	if got := float64(recs[0].FCT()); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("FCT = %v, want 0.5s", got)
	}
}

func TestTwoFlowsShareBottleneck(t *testing.T) {
	topo := mustTree(t, 4)
	eng := sim.NewEngine(1)
	fs := NewFlowSim(topo, eng)
	h := topo.Hosts()
	// Two flows into the same destination host: its access link is the
	// bottleneck; each gets half.
	size := 800e9 * 0.5
	if _, err := fs.StartFlow(h[0], h[15], size, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.StartFlow(h[1], h[15], size, 1); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	recs := fs.Records()
	if len(recs) != 2 {
		t.Fatalf("records = %d", len(recs))
	}
	// Both share fairly throughout, so both finish at ~1.0 s.
	for _, r := range recs {
		if math.Abs(float64(r.FCT())-1.0) > 1e-6 {
			t.Errorf("FCT = %v, want 1s", r.FCT())
		}
	}
}

func TestFlowCompletionFreesCapacity(t *testing.T) {
	topo := mustTree(t, 4)
	eng := sim.NewEngine(1)
	fs := NewFlowSim(topo, eng)
	h := topo.Hosts()
	// A short and a long flow to the same host: after the short one ends,
	// the long one speeds up. Long = 1s of line rate, short = 0.25s.
	fs.StartFlow(h[0], h[15], 800e9*1.0, 0)
	fs.StartFlow(h[1], h[15], 800e9*0.25, 1)
	eng.Run()
	recs := fs.Records()
	if len(recs) != 2 {
		t.Fatalf("records = %d", len(recs))
	}
	var short, long FlowRecord
	for _, r := range recs {
		if r.SizeBits < 800e9*0.5 {
			short = r
		} else {
			long = r
		}
	}
	// Short: shares until done: needs 0.25 at half rate -> 0.5s.
	if math.Abs(float64(short.FCT())-0.5) > 1e-6 {
		t.Errorf("short FCT = %v, want 0.5", short.FCT())
	}
	// Long: 0.5s at half rate (0.25 done) + 0.75 remaining at full = 1.25s.
	if math.Abs(float64(long.FCT())-1.25) > 1e-6 {
		t.Errorf("long FCT = %v, want 1.25", long.FCT())
	}
}

func TestGracefulDegradationVsLinkDown(t *testing.T) {
	// E12's core contrast on one access link: degrade to 96% vs kill.
	topoA := mustTree(t, 4)
	engA := sim.NewEngine(1)
	fsA := NewFlowSim(topoA, engA)
	h := topoA.Hosts()
	accessLink := topoA.adj[h[0]][0]
	fsA.StartFlow(h[0], h[15], 800e9*1.0, 0)
	// Degrade the access link to 96% shortly after start.
	engA.Schedule(0.1, func() { fsA.SetLinkCapacityFraction(accessLink, 0.96) })
	engA.Run()
	recA := fsA.Records()[0]

	topoB := mustTree(t, 4)
	engB := sim.NewEngine(1)
	fsB := NewFlowSim(topoB, engB)
	fsB.StartFlow(h[0], h[15], 800e9*1.0, 0)
	engB.Schedule(0.1, func() { fsB.FailLink(accessLink) })
	engB.Run()
	recB := fsB.Records()[0]

	if recA.Stalled {
		t.Fatal("degraded flow stalled")
	}
	// Degraded: tiny FCT hit (~3.75%).
	if got := float64(recA.FCT()); got < 1.0 || got > 1.1 {
		t.Errorf("degraded FCT = %v, want ~1.04", got)
	}
	// Killed access link: host is disconnected -> flow stalls.
	if !recB.Stalled {
		t.Errorf("flow over killed access link should stall, FCT=%v", recB.FCT())
	}
}

func TestRerouteAroundFailedCoreLink(t *testing.T) {
	topo := mustTree(t, 4)
	eng := sim.NewEngine(1)
	fs := NewFlowSim(topo, eng)
	h := topo.Hosts()
	fs.StartFlow(h[0], h[15], 800e9*1.0, 0)
	// Kill the agg uplink the flow is using (path index 1) mid-flight:
	// ECMP has alternatives, so the flow must reroute and finish.
	var usedLink int
	for _, f := range fs.active {
		usedLink = f.Path[1]
	}
	eng.Schedule(0.1, func() { fs.FailLink(usedLink) })
	eng.Run()
	recs := fs.Records()
	if len(recs) != 1 || recs[0].Stalled {
		t.Fatalf("flow did not survive core-link failure: %+v", recs)
	}
	if float64(recs[0].FCT()) < 1.0 {
		t.Error("FCT below ideal is impossible")
	}
}

func TestRestoreLink(t *testing.T) {
	topo := mustTree(t, 4)
	eng := sim.NewEngine(1)
	fs := NewFlowSim(topo, eng)
	lid := 0
	fs.SetLinkCapacityFraction(lid, 0.5)
	if fs.LinkCapacity(lid) != topo.Links[lid].RateBps*0.5 {
		t.Error("capacity not scaled")
	}
	fs.RestoreLink(lid)
	if fs.LinkCapacity(lid) != topo.Links[lid].RateBps {
		t.Error("capacity not restored")
	}
	fs.SetLinkCapacityFraction(-1, 0.5) // must not panic
	fs.SetLinkCapacityFraction(lid, -2)
	if fs.LinkCapacity(lid) != 0 {
		t.Error("negative fraction should clamp to dead")
	}
}

// The fraction is clamped to [0, 1]: a renegotiation can never push a
// link above its nominal rate, and garbage inputs degrade to link-down
// rather than corrupting the waterfill.
func TestSetLinkCapacityFractionBounds(t *testing.T) {
	topo := mustTree(t, 4)
	nominal := topo.Links[0].RateBps
	cases := []struct {
		name string
		frac float64
		want float64
	}{
		{"zero", 0, 0},
		{"half", 0.5, nominal * 0.5},
		{"full", 1, nominal},
		{"above-one", 1.5, nominal},
		{"huge", 1e12, nominal},
		{"negative", -0.25, 0},
		{"neg-inf", math.Inf(-1), 0},
		{"pos-inf", math.Inf(1), nominal},
		{"nan", math.NaN(), 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs := NewFlowSim(topo, sim.NewEngine(1))
			fs.SetLinkCapacityFraction(0, tc.frac)
			if got := fs.LinkCapacity(0); got != tc.want {
				t.Errorf("frac=%v: capacity = %g, want %g", tc.frac, got, tc.want)
			}
		})
	}
}

func TestStartFlowValidation(t *testing.T) {
	topo := mustTree(t, 4)
	fs := NewFlowSim(topo, sim.NewEngine(1))
	h := topo.Hosts()
	if _, err := fs.StartFlow(h[0], h[1], 0, 0); err == nil {
		t.Error("zero-size flow accepted")
	}
}

func TestStatsComputation(t *testing.T) {
	recs := []FlowRecord{
		{Start: 0, End: 1},
		{Start: 0, End: 2},
		{Start: 0, End: 3},
		{Start: 0, End: 10, Stalled: true},
	}
	st := Stats(recs)
	if st.Count != 3 || st.Stalled != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if math.Abs(float64(st.Mean)-2) > 1e-9 || st.Max != 3 || st.P50 != 2 {
		t.Errorf("stats = %+v", st)
	}
	if Stats(nil).Count != 0 {
		t.Error("empty stats should be zero")
	}
}

func TestTierStrings(t *testing.T) {
	for _, tier := range Tiers() {
		if tier.String() == "" || tier.TypicalLengthM() <= 0 {
			t.Error("tier metadata broken")
		}
	}
	if Tier(9).String() != "tier(9)" || Tier(9).TypicalLengthM() != 0 {
		t.Error("unknown tier handling")
	}
	for _, k := range []NodeKind{NodeHost, NodeEdge, NodeAgg, NodeCore, NodeKind(9)} {
		if k.String() == "" {
			t.Error("empty node kind")
		}
	}
}
