package workload

import (
	"math"
	"math/rand"
	"testing"
)

func TestFixed(t *testing.T) {
	f := Fixed{Bits: 1e6}
	rng := rand.New(rand.NewSource(1))
	if f.SampleBits(rng) != 1e6 || f.MeanBits() != 1e6 || f.Name() != "fixed" {
		t.Error("fixed distribution broken")
	}
}

func TestParetoBounds(t *testing.T) {
	p := Pareto{Alpha: 1.2, MinBits: 1e3, MaxBits: 1e9}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10000; i++ {
		s := p.SampleBits(rng)
		if s < p.MinBits*0.999 || s > p.MaxBits*1.001 {
			t.Fatalf("sample %v outside bounds", s)
		}
	}
}

func TestParetoHeavyTail(t *testing.T) {
	p := Pareto{Alpha: 1.2, MinBits: 1e3, MaxBits: 1e9}
	rng := rand.New(rand.NewSource(3))
	var small, large int
	for i := 0; i < 20000; i++ {
		s := p.SampleBits(rng)
		if s < 1e4 {
			small++
		}
		if s > 1e6 {
			large++
		}
	}
	if small < 10000 {
		t.Errorf("most samples should be small: %d", small)
	}
	if large == 0 {
		t.Error("the tail should produce some huge flows")
	}
}

func TestParetoDegenerate(t *testing.T) {
	p := Pareto{Alpha: 0, MinBits: 5, MaxBits: 1}
	rng := rand.New(rand.NewSource(4))
	if p.SampleBits(rng) != 5 {
		t.Error("degenerate Pareto should return MinBits")
	}
}

func TestEmpiricalValidation(t *testing.T) {
	if _, err := NewEmpirical("x", nil, nil); err == nil {
		t.Error("empty CDF accepted")
	}
	if _, err := NewEmpirical("x", []float64{1, 2}, []float64{0.5}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := NewEmpirical("x", []float64{2, 1}, []float64{0.5, 1}); err == nil {
		t.Error("descending sizes accepted")
	}
	if _, err := NewEmpirical("x", []float64{1, 2}, []float64{0.5, 0.9}); err == nil {
		t.Error("CDF not ending at 1 accepted")
	}
}

func TestPresetDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, d := range []SizeDist{WebSearch(), DataMining()} {
		if d.Name() == "" || d.MeanBits() <= 0 {
			t.Fatalf("%s: bad metadata", d.Name())
		}
		var sum float64
		const n = 50000
		for i := 0; i < n; i++ {
			s := d.SampleBits(rng)
			if s <= 0 {
				t.Fatalf("%s: non-positive sample", d.Name())
			}
			sum += s
		}
		mean := sum / n
		// Sampled mean within 2x of analytic trapezoidal mean (heavy tails
		// converge slowly; this is a sanity check, not an estimator test).
		if mean < d.MeanBits()/3 || mean > d.MeanBits()*3 {
			t.Errorf("%s: sampled mean %v vs analytic %v", d.Name(), mean, d.MeanBits())
		}
	}
}

func TestWebSearchShape(t *testing.T) {
	d := WebSearch()
	rng := rand.New(rand.NewSource(6))
	over1MB := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if d.SampleBits(rng) > 8e6 {
			over1MB++
		}
	}
	frac := float64(over1MB) / n
	// ~30% of web-search flows exceed 1 MB (they carry most bytes).
	if frac < 0.15 || frac > 0.45 {
		t.Errorf("fraction over 1MB = %v", frac)
	}
}

func TestPoissonArrivals(t *testing.T) {
	p := NewPoissonForLoad(0.5, 16, 800e9, 1e6)
	// rate = 0.5 * 16 * 800e9 / 1e6 = 6.4e6 flows/s.
	if math.Abs(p.RatePerSec-6.4e6) > 1 {
		t.Errorf("rate = %v", p.RatePerSec)
	}
	rng := rand.New(rand.NewSource(7))
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += p.NextGapSec(rng)
	}
	mean := sum / n
	want := 1 / p.RatePerSec
	if math.Abs(mean-want) > want*0.05 {
		t.Errorf("mean gap %v, want %v", mean, want)
	}
}

func TestPoissonEdges(t *testing.T) {
	p := PoissonArrivals{}
	rng := rand.New(rand.NewSource(8))
	if !math.IsInf(p.NextGapSec(rng), 1) {
		t.Error("zero rate should never fire")
	}
	if NewPoissonForLoad(-1, 10, 1e9, 1e6).RatePerSec != 0 {
		t.Error("negative load should clamp")
	}
	if NewPoissonForLoad(0.5, 10, 1e9, 0).RatePerSec <= 0 {
		t.Error("zero mean bits should not divide by zero")
	}
}
