package workload

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmpiricalSampleWithinSupport(t *testing.T) {
	d := WebSearch()
	rng := rand.New(rand.NewSource(10))
	lo, hi := d.sizes[0], d.sizes[len(d.sizes)-1]
	for i := 0; i < 50000; i++ {
		s := d.SampleBits(rng)
		if s < lo-1 || s > hi+1 {
			t.Fatalf("sample %v outside [%v, %v]", s, lo, hi)
		}
	}
}

func TestEmpiricalQuantilesMatchCDF(t *testing.T) {
	d := WebSearch()
	rng := rand.New(rand.NewSource(11))
	const n = 100000
	samples := make([]float64, n)
	for i := range samples {
		samples[i] = d.SampleBits(rng)
	}
	sort.Float64s(samples)
	// At each CDF anchor, the empirical quantile should be close to the
	// anchor size (linear interpolation smooths between anchors).
	for i, p := range d.cdf {
		if p >= 0.99 {
			continue // tail quantiles are noisy
		}
		q := samples[int(p*float64(n-1))]
		want := d.sizes[i]
		if q < want*0.6 || q > want*1.4 {
			t.Errorf("quantile at %v: got %v, want ~%v", p, q, want)
		}
	}
}

func TestEmpiricalFirstBucket(t *testing.T) {
	// Samples landing in the first bucket return the smallest size.
	e, err := NewEmpirical("x", []float64{100, 200}, []float64{0.9, 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	seen100 := false
	for i := 0; i < 1000; i++ {
		s := e.SampleBits(rng)
		if s == 100 {
			seen100 = true
		}
		if s < 100 || s > 200 {
			t.Fatalf("sample %v out of range", s)
		}
	}
	if !seen100 {
		t.Error("first-bucket samples never returned the anchor size")
	}
}

func TestParetoMeanFormula(t *testing.T) {
	// Sampled mean should approximate the analytic mean for alpha > 1.
	p := Pareto{Alpha: 1.5, MinBits: 1e4, MaxBits: 1e8}
	rng := rand.New(rand.NewSource(13))
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += p.SampleBits(rng)
	}
	mean := sum / n
	analytic := p.MeanBits()
	if analytic <= 0 || math.Abs(mean-analytic)/analytic > 0.5 {
		t.Errorf("sampled mean %v vs analytic %v", mean, analytic)
	}
}

func TestParetoAlphaOneMean(t *testing.T) {
	p := Pareto{Alpha: 1, MinBits: 1e3, MaxBits: 1e6}
	if m := p.MeanBits(); m <= p.MinBits || m >= p.MaxBits {
		t.Errorf("alpha=1 mean = %v outside support", m)
	}
}

func TestDataMiningHeavierTailThanWebSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	ws, dm := WebSearch(), DataMining()
	wsMax, dmMax := 0.0, 0.0
	for i := 0; i < 50000; i++ {
		if s := ws.SampleBits(rng); s > wsMax {
			wsMax = s
		}
		if s := dm.SampleBits(rng); s > dmMax {
			dmMax = s
		}
	}
	if !(dmMax > wsMax) {
		t.Errorf("data-mining tail %v should exceed web-search %v", dmMax, wsMax)
	}
}

func TestPoissonGapQuick(t *testing.T) {
	p := PoissonArrivals{RatePerSec: 1e6}
	rng := rand.New(rand.NewSource(15))
	prop := func(uint8) bool {
		g := p.NextGapSec(rng)
		return g >= 0 && !math.IsNaN(g)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestSampleBitsAlwaysPositiveQuick(t *testing.T) {
	dists := []SizeDist{WebSearch(), DataMining(),
		Fixed{Bits: 100}, Pareto{Alpha: 1.3, MinBits: 10, MaxBits: 1e6}}
	rng := rand.New(rand.NewSource(16))
	prop := func(uint8) bool {
		for _, d := range dists {
			if d.SampleBits(rng) <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
