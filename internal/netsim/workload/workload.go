// Package workload generates datacenter traffic for the flow simulator:
// Poisson arrivals with flow sizes drawn from empirical datacenter
// distributions (web-search and data-mining style CDFs from the DCTCP/
// pFabric literature), plus simple fixed and Pareto generators for
// controlled experiments.
package workload

import (
	"errors"
	"math"
	"math/rand"
	"sort"
)

// SizeDist draws flow sizes in bits.
type SizeDist interface {
	Name() string
	SampleBits(rng *rand.Rand) float64
	MeanBits() float64
}

// Fixed returns a constant-size distribution.
type Fixed struct{ Bits float64 }

// Name implements SizeDist.
func (f Fixed) Name() string { return "fixed" }

// SampleBits implements SizeDist.
func (f Fixed) SampleBits(*rand.Rand) float64 { return f.Bits }

// MeanBits implements SizeDist.
func (f Fixed) MeanBits() float64 { return f.Bits }

// Pareto is a bounded Pareto distribution (heavy tail).
type Pareto struct {
	Alpha   float64
	MinBits float64
	MaxBits float64
}

// Name implements SizeDist.
func (p Pareto) Name() string { return "pareto" }

// SampleBits implements SizeDist.
func (p Pareto) SampleBits(rng *rand.Rand) float64 {
	if p.Alpha <= 0 || p.MinBits <= 0 || p.MaxBits <= p.MinBits {
		return p.MinBits
	}
	u := rng.Float64()
	l, h := math.Pow(p.MinBits, p.Alpha), math.Pow(p.MaxBits, p.Alpha)
	return math.Pow(-(u*h-u*l-h)/(h*l), -1/p.Alpha)
}

// MeanBits implements SizeDist.
func (p Pareto) MeanBits() float64 {
	if p.Alpha == 1 {
		return p.MinBits * math.Log(p.MaxBits/p.MinBits) /
			(1 - p.MinBits/p.MaxBits)
	}
	a := p.Alpha
	num := a * (math.Pow(p.MinBits, a)*math.Pow(p.MaxBits, 1-a) - p.MinBits) // approximate
	den := (1 - a) * (1 - math.Pow(p.MinBits/p.MaxBits, a))
	m := num / den
	if m < p.MinBits {
		m = p.MinBits
	}
	return m
}

// Empirical is a piecewise CDF over flow sizes.
type Empirical struct {
	name  string
	sizes []float64 // bits, ascending
	cdf   []float64 // cumulative probability, ascending to 1
}

// NewEmpirical builds a distribution from (sizeBits, cumProb) points. The
// last cumProb must be 1 and points must be ascending.
func NewEmpirical(name string, sizes, cdf []float64) (*Empirical, error) {
	if len(sizes) == 0 || len(sizes) != len(cdf) {
		return nil, errors.New("workload: sizes and cdf must be equal-length and non-empty")
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] <= sizes[i-1] || cdf[i] <= cdf[i-1] {
			return nil, errors.New("workload: CDF points must be strictly ascending")
		}
	}
	if math.Abs(cdf[len(cdf)-1]-1) > 1e-9 {
		return nil, errors.New("workload: CDF must end at 1")
	}
	return &Empirical{name: name, sizes: sizes, cdf: cdf}, nil
}

// Name implements SizeDist.
func (e *Empirical) Name() string { return e.name }

// SampleBits implements SizeDist.
func (e *Empirical) SampleBits(rng *rand.Rand) float64 {
	u := rng.Float64()
	i := sort.SearchFloat64s(e.cdf, u)
	if i >= len(e.sizes) {
		i = len(e.sizes) - 1
	}
	if i == 0 {
		// Interpolate from zero probability at size[0].
		return e.sizes[0]
	}
	// Linear interpolation between points.
	f := (u - e.cdf[i-1]) / (e.cdf[i] - e.cdf[i-1])
	return e.sizes[i-1] + f*(e.sizes[i]-e.sizes[i-1])
}

// MeanBits implements SizeDist.
func (e *Empirical) MeanBits() float64 {
	mean := 0.0
	prev := 0.0
	prevSize := e.sizes[0]
	for i := range e.sizes {
		p := e.cdf[i] - prev
		mean += p * (prevSize + e.sizes[i]) / 2
		prev = e.cdf[i]
		prevSize = e.sizes[i]
	}
	return mean
}

// WebSearch returns the DCTCP web-search flow size distribution
// (approximate CDF, sizes in bytes converted to bits).
func WebSearch() *Empirical {
	kb := 8.0 * 1024
	e, err := NewEmpirical("websearch",
		[]float64{6 * kb, 13 * kb, 19 * kb, 33 * kb, 53 * kb, 133 * kb,
			667 * kb, 1333 * kb, 3333 * kb, 6667 * kb, 20000 * kb, 30000 * kb},
		[]float64{0.15, 0.2, 0.3, 0.4, 0.53, 0.6, 0.7, 0.8, 0.9, 0.97, 0.998, 1.0})
	if err != nil {
		panic(err)
	}
	return e
}

// DataMining returns the data-mining (Hadoop-style) distribution: mostly
// tiny flows plus a very heavy tail.
func DataMining() *Empirical {
	kb := 8.0 * 1024
	e, err := NewEmpirical("datamining",
		[]float64{0.3 * kb, 0.5 * kb, 1 * kb, 2 * kb, 10 * kb, 100 * kb,
			1000 * kb, 10000 * kb, 100000 * kb, 1000000 * kb},
		[]float64{0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.97, 0.99, 0.999, 1.0})
	if err != nil {
		panic(err)
	}
	return e
}

// PoissonArrivals yields exponential inter-arrival times for a target
// offered load on a set of hosts.
type PoissonArrivals struct {
	RatePerSec float64
}

// NewPoissonForLoad sizes the arrival rate so that `hosts` hosts with
// `accessBps` access links run at the given utilisation with mean flow
// size meanBits.
func NewPoissonForLoad(load float64, hosts int, accessBps, meanBits float64) PoissonArrivals {
	if load < 0 {
		load = 0
	}
	total := load * float64(hosts) * accessBps
	if meanBits <= 0 {
		meanBits = 1
	}
	return PoissonArrivals{RatePerSec: total / meanBits}
}

// NextGapSec draws the next inter-arrival gap in seconds.
func (p PoissonArrivals) NextGapSec(rng *rand.Rand) float64 {
	if p.RatePerSec <= 0 {
		return math.Inf(1)
	}
	return rng.ExpFloat64() / p.RatePerSec
}
