package netsim

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"mosaic/internal/sim"
)

// Flow is one transfer in the fluid flow model.
type Flow struct {
	ID       int
	Src, Dst int
	SizeBits float64
	Path     []int // link IDs
	Hash     uint64

	// Weight scales the flow's share under weighted max-min fairness: a
	// weight-2 flow receives twice the rate of a weight-1 flow at the
	// same bottleneck. StartFlow sets 1; priority traffic (e.g. a MAC
	// virtual channel's QoS class) uses StartFlowWeighted.
	Weight float64

	remaining float64
	rate      float64
	start     sim.Time
	lastTouch sim.Time
}

// FlowRecord is a completed (or abandoned) flow.
type FlowRecord struct {
	ID       int
	SizeBits float64
	Start    sim.Time
	End      sim.Time
	Stalled  bool // true if the flow could never finish (no route)
}

// FCT returns the flow completion time.
func (r FlowRecord) FCT() sim.Time { return r.End - r.Start }

// FlowSim is a max-min fair fluid flow simulator over a Topology, driven
// by a discrete-event engine. Rates are recomputed on every arrival,
// completion, or capacity change; the next completion is scheduled exactly.
type FlowSim struct {
	Topo   *Topology
	Engine *sim.Engine

	capacity []float64 // current capacity per link (bps)
	active   map[int]*Flow
	nextID   int
	records  []FlowRecord

	recomputes        uint64
	pendingCompletion sim.Canceler
}

// NewFlowSim builds a simulator over the topology with each link at its
// nominal rate.
func NewFlowSim(t *Topology, engine *sim.Engine) *FlowSim {
	fs := &FlowSim{
		Topo:     t,
		Engine:   engine,
		capacity: make([]float64, len(t.Links)),
		active:   make(map[int]*Flow),
	}
	for i, l := range t.Links {
		fs.capacity[i] = l.RateBps
	}
	return fs
}

// LinkCapacity returns the current capacity of a link.
func (fs *FlowSim) LinkCapacity(linkID int) float64 { return fs.capacity[linkID] }

// ActiveFlows returns the number of in-flight flows.
func (fs *FlowSim) ActiveFlows() int { return len(fs.active) }

// Records returns completed/stalled flow records.
func (fs *FlowSim) Records() []FlowRecord { return fs.records }

// Recomputes returns how many global rate recomputations have run — the
// quantity the incremental engine exists to reduce, and the counter the
// SetLinkCapacityFraction no-op test asserts on.
func (fs *FlowSim) Recomputes() uint64 { return fs.recomputes }

// StartFlow injects a weight-1 flow now. It picks the ECMP path from the
// hash and returns the flow ID.
func (fs *FlowSim) StartFlow(src, dst int, sizeBits float64, hash uint64) (int, error) {
	return fs.StartFlowWeighted(src, dst, sizeBits, hash, 1)
}

// StartFlowWeighted injects a flow with a max-min scheduling weight
// (weight <= 0 or NaN is treated as 1, so plain flows are unaffected).
func (fs *FlowSim) StartFlowWeighted(src, dst int, sizeBits float64, hash uint64, weight float64) (int, error) {
	if sizeBits <= 0 {
		return 0, errFlowSize
	}
	if weight <= 0 || weight != weight {
		weight = 1
	}
	path, err := routeAvoidingDead(fs.Topo, fs.capacity, src, dst, hash)
	if err != nil {
		return 0, err
	}
	id := fs.nextID
	fs.nextID++
	f := &Flow{
		ID: id, Src: src, Dst: dst, SizeBits: sizeBits,
		Path: path, Hash: hash, Weight: weight,
		remaining: sizeBits,
		start:     fs.Engine.Now(),
		lastTouch: fs.Engine.Now(),
	}
	fs.active[id] = f
	fs.reschedule()
	return id, nil
}

// errFlowSize rejects non-positive flow sizes.
var errFlowSize = errors.New("netsim: flow size must be positive")

// routeAvoidingDead retries ECMP hashes until the path avoids dead
// links. Shared by every engine flavor (global, incremental, fleet).
func routeAvoidingDead(t *Topology, capacity []float64, src, dst int, hash uint64) ([]int, error) {
	var lastErr error
	for attempt := uint64(0); attempt < 64; attempt++ {
		path, err := t.Path(src, dst, hash+attempt*0x9e3779b9)
		if err != nil {
			lastErr = err
			continue
		}
		ok := true
		for _, l := range path {
			if capacity[l] <= 0 {
				ok = false
				break
			}
		}
		if ok {
			return path, nil
		}
		lastErr = fmt.Errorf("netsim: path through dead link")
	}
	return nil, fmt.Errorf("netsim: no live path from %d to %d: %w", src, dst, lastErr)
}

// SetLinkCapacityFraction scales a link to frac of its nominal rate
// (graceful degradation: a Mosaic link that lost channels). frac=0 kills
// the link and reroutes affected flows. frac is clamped to [0, 1]: a
// degraded link can never exceed its nominal rate (RestoreLink is the
// ceiling), and NaN is treated as link-down rather than poisoning the
// max-min waterfill.
func (fs *FlowSim) SetLinkCapacityFraction(linkID int, frac float64) {
	if linkID < 0 || linkID >= len(fs.capacity) {
		return
	}
	if frac < 0 || frac != frac {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	newCap := fs.Topo.Links[linkID].RateBps * frac
	if newCap == fs.capacity[linkID] {
		// No-op change (repeated RestoreLink, a Bridge re-sync publishing
		// the fraction it already holds, a second FailLink on a dead
		// link): nothing about the allocation can change, so skip the
		// global reschedule entirely. A dead link stays dead here — the
		// reroute already happened when the capacity first hit zero, and
		// no active flow can cross a zero-capacity link since.
		return
	}
	fs.capacity[linkID] = newCap
	if newCap == 0 {
		fs.rerouteThrough(linkID)
	}
	fs.reschedule()
}

// FailLink kills a link entirely (optics-style link-down) and reroutes.
func (fs *FlowSim) FailLink(linkID int) { fs.SetLinkCapacityFraction(linkID, 0) }

// RestoreLink returns a link to full capacity.
func (fs *FlowSim) RestoreLink(linkID int) { fs.SetLinkCapacityFraction(linkID, 1) }

// rerouteThrough re-paths all active flows crossing the (now dead) link.
// Flows with no remaining live path are recorded as stalled and dropped.
// Crossing flows are processed in ascending flow-ID order: a link kill
// that strands several flows must append their Stalled records in a
// run-independent order, not whatever order the active map yields.
func (fs *FlowSim) rerouteThrough(linkID int) {
	var crossing []int
	for id, f := range fs.active {
		for _, l := range f.Path {
			if l == linkID {
				crossing = append(crossing, id)
				break
			}
		}
	}
	sort.Ints(crossing)
	for _, id := range crossing {
		f := fs.active[id]
		fs.settle(f)
		path, err := routeAvoidingDead(fs.Topo, fs.capacity, f.Src, f.Dst, f.Hash+1)
		if err != nil {
			fs.records = append(fs.records, FlowRecord{
				ID: f.ID, SizeBits: f.SizeBits, Start: f.start,
				End: fs.Engine.Now(), Stalled: true,
			})
			delete(fs.active, id)
			continue
		}
		f.Path = path
	}
}

// settle progresses a flow's remaining bits to the current instant.
func (fs *FlowSim) settle(f *Flow) {
	elapsed := float64(fs.Engine.Now() - f.lastTouch)
	if elapsed > 0 && f.rate > 0 {
		f.remaining -= f.rate * elapsed
		if f.remaining < 0 {
			f.remaining = 0
		}
	}
	f.lastTouch = fs.Engine.Now()
}

// recomputeRates performs progressive-filling weighted max-min fairness:
// each link's fair share is remaining capacity per unit of flow weight,
// and a flow frozen at a bottleneck receives share * Weight. With all
// weights 1 this reduces exactly to classic max-min.
//
// Flows are processed in ascending ID order and links in ascending index
// order, so the floating-point accumulation sequence — and therefore
// every computed rate, bit for bit — is identical from run to run and
// identical to the incremental engine's per-component waterfill (which
// the flowsim_inc diffcheck stage pins against refmodel.MaxMinRates).
func (fs *FlowSim) recomputeRates() {
	fs.recomputes++
	for _, f := range fs.active {
		fs.settle(f)
		f.rate = 0
	}
	if len(fs.active) == 0 {
		return
	}
	remCap := make([]float64, len(fs.capacity))
	copy(remCap, fs.capacity)
	weightOn := make([]float64, len(fs.capacity)) // unfrozen flow weight per link
	unfrozen := make([]*Flow, 0, len(fs.active))
	for _, f := range fs.active {
		unfrozen = append(unfrozen, f)
	}
	sort.Slice(unfrozen, func(i, j int) bool { return unfrozen[i].ID < unfrozen[j].ID })
	for _, f := range unfrozen {
		for _, l := range f.Path {
			weightOn[l] += f.weight()
		}
	}
	for len(unfrozen) > 0 {
		// Find the bottleneck link: minimal per-weight fair share among
		// links with unfrozen flows (first such link on a tie).
		bottleneck := -1
		best := math.Inf(1)
		for l := range remCap {
			if weightOn[l] <= 0 {
				continue
			}
			fair := remCap[l] / weightOn[l]
			if fair < best {
				best = fair
				bottleneck = l
			}
		}
		if bottleneck < 0 {
			break
		}
		// Freeze every unfrozen flow crossing the bottleneck at its
		// weighted share of `best`, in ascending flow-ID order.
		keep := unfrozen[:0]
		for _, f := range unfrozen {
			crosses := false
			for _, l := range f.Path {
				if l == bottleneck {
					crosses = true
					break
				}
			}
			if !crosses {
				keep = append(keep, f)
				continue
			}
			f.rate = best * f.weight()
			for _, l := range f.Path {
				remCap[l] -= f.rate
				if remCap[l] < 0 {
					remCap[l] = 0
				}
				weightOn[l] -= f.weight()
			}
		}
		if len(keep) == len(unfrozen) {
			// No flow crossed the bottleneck: its weightOn is only
			// floating-point residue from non-integer weights. Retire the
			// link and keep filling — other links may still constrain
			// live flows.
			weightOn[bottleneck] = 0
			continue
		}
		unfrozen = keep
	}
}

// weight returns the flow's effective max-min weight (zero value = 1, so
// Flow literals without an explicit weight behave like before).
func (f *Flow) weight() float64 {
	if f.Weight <= 0 || f.Weight != f.Weight {
		return 1
	}
	return f.Weight
}

// reschedule recomputes rates and schedules the next completion event.
func (fs *FlowSim) reschedule() {
	if fs.pendingCompletion != nil {
		fs.pendingCompletion()
		fs.pendingCompletion = nil
	}
	fs.recomputeRates()
	// Earliest completion; exact ties break on the lower flow ID, so two
	// flows finishing at the same instant are recorded in a
	// run-independent order instead of active-map iteration order.
	var next *Flow
	nextAt := sim.Time(math.Inf(1))
	for _, f := range fs.active {
		if f.rate <= 0 {
			continue
		}
		at := fs.Engine.Now() + sim.Time(f.remaining/f.rate)
		if at < nextAt || (at == nextAt && next != nil && f.ID < next.ID) {
			nextAt = at
			next = f
		}
	}
	if next == nil {
		return
	}
	id := next.ID
	fs.pendingCompletion = fs.Engine.Schedule(nextAt, func() {
		fs.pendingCompletion = nil
		f, ok := fs.active[id]
		if !ok {
			fs.reschedule()
			return
		}
		fs.settle(f)
		fs.records = append(fs.records, FlowRecord{
			ID: f.ID, SizeBits: f.SizeBits, Start: f.start, End: fs.Engine.Now(),
		})
		delete(fs.active, id)
		fs.reschedule()
	})
}

// FCTStats summarises completion times.
type FCTStats struct {
	Count   int
	Stalled int
	Mean    sim.Time
	P50     sim.Time
	P99     sim.Time
	Max     sim.Time
}

// Stats computes FCT statistics over completed (non-stalled) records.
func Stats(records []FlowRecord) FCTStats {
	var st FCTStats
	var fcts []float64
	var sum float64
	for _, r := range records {
		if r.Stalled {
			st.Stalled++
			continue
		}
		f := float64(r.FCT())
		fcts = append(fcts, f)
		sum += f
	}
	st.Count = len(fcts)
	if st.Count == 0 {
		return st
	}
	sort.Float64s(fcts)
	st.Mean = sim.Time(sum / float64(st.Count))
	st.P50 = sim.Time(fcts[st.Count/2])
	st.P99 = sim.Time(fcts[min(st.Count-1, st.Count*99/100)])
	st.Max = sim.Time(fcts[st.Count-1])
	return st
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
