package netsim

import (
	"container/heap"
	"fmt"
	"runtime"
	"slices"
	"sort"
	"strings"
	"sync"

	"mosaic/internal/sim"
)

// FleetSim is the sharded, epoch-driven flow engine for fleet-scale
// simulation (ROADMAP item 2): one flowGraph shard per pod, rates
// frozen between epoch barriers, and all cross-shard coupling resolved
// at the barrier so the parallel phases touch only shard-local state.
//
// An epoch proceeds:
//
//	barrier (sequential)  — capacity changes, kills/reroutes, arrivals
//	phase A (parallel)    — each shard re-waterfills its dirty
//	                        components; cross-shard proxies participate
//	                        unpinned and their resulting rate is the
//	                        shard's offer for that flow
//	phase B (sequential)  — each cross flow's rate = min of its shard
//	                        offers; proxies are pinned at that rate and
//	                        shards whose allocation changed are re-dirtied
//	phase C (parallel)    — affected components re-waterfill with the
//	                        pinned proxies as fixed demand, returning the
//	                        slack to local flows
//	epoch run (parallel)  — each shard drains its completion heap up to
//	                        the epoch end at the frozen rates; cross
//	                        completions were resolved at the barrier
//
// Every sequential step iterates in ascending flow-ID / link-ID / shard
// order and every parallel step is shard-pure (a cross flow's two
// proxies are each owned by exactly one shard), so the records, event
// log, and every rate are byte-identical at any worker count — the same
// discipline the PHY/MAC pipelines obey.
//
// The fleet model is deliberately weaker than IncFlowSim's: rates are
// exact weighted max-min within a shard given the pinned cross rates,
// but cross flows advance at the min of per-shard offers (a bounded-
// staleness approximation refreshed whenever either side's component is
// dirtied) and a completion only frees capacity at the next barrier.
type FleetSim struct {
	Topo    *Topology
	shardOf []int
	workers int

	now      sim.Time
	capacity []float64 // shared; written only at barriers
	nextID   int

	shards []*fleetShard
	cross  map[int]*crossFlow

	records []FlowRecord // stalls + cross completions (shard records merged on demand)
	log     []string

	// Per-epoch counters (reset each Step).
	epochIdx      int
	arrivals      int
	stalls        int
	crossArrivals int

	// onResolved, when set, runs at the sequential point of Step where
	// the epoch's rates are fully resolved (after phase C, before cross
	// completions) — see SetResolvedHook.
	onResolved func()
}

// fleetShard is one pod's slice of the fleet: its own flowGraph over
// the shared capacity vector (only its pod's links are ever indexed), a
// completion heap for local flows, and its own record log.
type fleetShard struct {
	id     int
	g      *flowGraph
	active map[int]*incFlow
	h      completionHeap

	records []FlowRecord
	reRated []*incFlow // flows re-rated this epoch (phase A ∪ phase C)
	seenGen uint64
	done    int // completions this epoch
}

// crossFlow is the fleet-level master record of a two-shard flow; each
// involved shard holds a proxy restricted to its own links.
type crossFlow struct {
	id        int
	src, dst  int
	sizeBits  float64
	remaining float64
	rate      float64
	hash      uint64
	start     sim.Time
	proxies   []*incFlow // ascending shard order
	shards    []int
}

// NewFleetSim builds the sharded engine over a fleet topology.
// workers <= 0 runs the parallel phases on GOMAXPROCS goroutines;
// workers == 1 is fully sequential. Results are identical either way.
func NewFleetSim(t *Topology, workers int) *FleetSim {
	shardOf := LinkShards(t)
	pods := NumPods(t)
	capacity := make([]float64, len(t.Links))
	for i, l := range t.Links {
		capacity[i] = l.RateBps
	}
	fs := &FleetSim{
		Topo:     t,
		shardOf:  shardOf,
		workers:  workers,
		capacity: capacity,
		cross:    make(map[int]*crossFlow),
	}
	for p := 0; p < pods; p++ {
		fs.shards = append(fs.shards, &fleetShard{
			id:     p,
			g:      newFlowGraph(t, capacity),
			active: make(map[int]*incFlow),
		})
	}
	return fs
}

// Now returns the current barrier time.
func (fs *FleetSim) Now() sim.Time { return fs.now }

// ActiveFlows returns the number of in-flight flows (local + cross).
func (fs *FleetSim) ActiveFlows() int {
	n := len(fs.cross)
	for _, s := range fs.shards {
		n += len(s.active)
	}
	return n
}

// CrossFlows returns the number of in-flight cross-shard flows.
func (fs *FleetSim) CrossFlows() int { return len(fs.cross) }

// Waterfills sums component waterfill passes across shards.
func (fs *FleetSim) Waterfills() uint64 {
	var n uint64
	for _, s := range fs.shards {
		n += s.g.waterfills
	}
	return n
}

// RatedFlows sums per-flow rate assignments across shards — the work
// actually done, against FlowSim's recomputes × active upper bound.
func (fs *FleetSim) RatedFlows() uint64 {
	var n uint64
	for _, s := range fs.shards {
		n += s.g.rated
	}
	return n
}

// EventLog returns the per-epoch log lines (the determinism witness:
// its sha must match at any worker count).
func (fs *FleetSim) EventLog() []string { return fs.log }

// Records merges all shard-local and fleet-level records, ordered by
// (End, ID) — a deterministic global completion order.
func (fs *FleetSim) Records() []FlowRecord {
	var out []FlowRecord
	out = append(out, fs.records...)
	for _, s := range fs.shards {
		out = append(out, s.records...)
	}
	slices.SortFunc(out, func(a, b FlowRecord) int {
		if a.End != b.End {
			if a.End < b.End {
				return -1
			}
			return 1
		}
		return a.ID - b.ID
	})
	return out
}

// Inject starts a flow at the current barrier. The path is the live
// ECMP route; flows whose links all sit in one pod are local to that
// shard, flows spanning two pods become a cross flow with one proxy per
// shard. Weight is 1 (fleet traffic is best-effort).
func (fs *FleetSim) Inject(src, dst int, sizeBits float64, hash uint64) (int, error) {
	if sizeBits <= 0 {
		return 0, errFlowSize
	}
	path, err := routeAvoidingDead(fs.Topo, fs.capacity, src, dst, hash)
	if err != nil {
		return 0, err
	}
	id := fs.nextID
	fs.nextID++
	fs.admit(id, src, dst, sizeBits, sizeBits, hash, fs.now, path)
	fs.arrivals++
	return id, nil
}

// admit places a routed flow (new or rerouted) into its shard(s).
func (fs *FleetSim) admit(id, src, dst int, sizeBits, remaining float64, hash uint64, start sim.Time, path []int) {
	shardSet := []int{}
	for _, l := range path {
		s := fs.shardOf[l]
		found := false
		for _, have := range shardSet {
			if have == s {
				found = true
				break
			}
		}
		if !found {
			shardSet = append(shardSet, s)
		}
	}
	sort.Ints(shardSet)

	if len(shardSet) == 1 {
		sh := fs.shards[shardSet[0]]
		f := &incFlow{Flow: Flow{
			ID: id, Src: src, Dst: dst, SizeBits: sizeBits,
			Path: path, Hash: hash, Weight: 1,
			remaining: remaining, start: start, lastTouch: fs.now,
		}}
		sh.active[id] = f
		sh.g.addFlow(f)
		return
	}

	cf := &crossFlow{
		id: id, src: src, dst: dst, sizeBits: sizeBits,
		remaining: remaining, hash: hash, start: start, shards: shardSet,
	}
	for _, s := range shardSet {
		sub := make([]int, 0, len(path))
		for _, l := range path {
			if fs.shardOf[l] == s {
				sub = append(sub, l)
			}
		}
		p := &incFlow{Flow: Flow{
			ID: id, Src: src, Dst: dst, SizeBits: sizeBits,
			Path: sub, Hash: hash, Weight: 1,
		}, proxy: true}
		fs.shards[s].g.addFlow(p)
		cf.proxies = append(cf.proxies, p)
	}
	fs.cross[id] = cf
	fs.crossArrivals++
}

// SetLinkFraction scales a link to frac of nominal at the barrier, with
// FlowSim's clamp and no-op semantics. frac=0 kills the link: crossing
// flows reroute (in ascending flow-ID order) or stall.
func (fs *FleetSim) SetLinkFraction(linkID int, frac float64) {
	if linkID < 0 || linkID >= len(fs.capacity) {
		return
	}
	if frac < 0 || frac != frac {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	newCap := fs.Topo.Links[linkID].RateBps * frac
	if newCap == fs.capacity[linkID] {
		return
	}
	fs.capacity[linkID] = newCap
	fs.shards[fs.shardOf[linkID]].g.markDirty(linkID)
	if newCap == 0 {
		fs.rerouteThrough(linkID)
	}
}

// rerouteThrough re-admits or stalls every flow crossing a dead link.
func (fs *FleetSim) rerouteThrough(linkID int) {
	sh := fs.shards[fs.shardOf[linkID]]
	refs := sh.g.linkFlows[linkID]
	ids := make([]int, 0, len(refs))
	for _, ref := range refs {
		ids = append(ids, ref.f.ID)
	}
	sort.Ints(ids)
	for _, id := range ids {
		if cf, ok := fs.cross[id]; ok {
			for i, s := range cf.shards {
				fs.shards[s].g.removeFlow(cf.proxies[i])
			}
			delete(fs.cross, id)
			fs.repath(id, cf.src, cf.dst, cf.sizeBits, cf.remaining, cf.hash, cf.start)
			continue
		}
		f, ok := sh.active[id]
		if !ok {
			continue // already handled (duplicate ref cannot happen, but stay safe)
		}
		sh.g.now = fs.now
		sh.g.settle(f)
		f.ver++ // invalidate queued completion
		delete(sh.active, id)
		sh.g.removeFlow(f)
		fs.repath(id, f.Src, f.Dst, f.SizeBits, f.remaining, f.Hash, f.start)
	}
}

// repath routes a displaced flow around dead links, re-admitting it
// (possibly changing local/cross classification) or recording a stall.
func (fs *FleetSim) repath(id, src, dst int, sizeBits, remaining float64, hash uint64, start sim.Time) {
	path, err := routeAvoidingDead(fs.Topo, fs.capacity, src, dst, hash+1)
	if err != nil {
		fs.records = append(fs.records, FlowRecord{
			ID: id, SizeBits: sizeBits, Start: start, End: fs.now, Stalled: true,
		})
		fs.stalls++
		return
	}
	fs.admit(id, src, dst, sizeBits, remaining, hash, start, path)
}

// Step advances the fleet by one epoch: resolve rates (phases A–C),
// complete cross flows at the barrier, then run every shard's local
// completions at frozen rates in parallel.
func (fs *FleetSim) Step(epochLen sim.Time) {
	epochEnd := fs.now + epochLen

	// Phase A: shard-local waterfill of dirty components; proxies bid.
	fs.runShards(func(sh *fleetShard) {
		sh.seenGen++
		sh.g.now = fs.now
		sh.noteReRated(sh.g.flush(true))
	})

	// Phase B: pin every cross flow at the min of its shards' offers.
	crossIDs := make([]int, 0, len(fs.cross))
	for id := range fs.cross {
		crossIDs = append(crossIDs, id)
	}
	sort.Ints(crossIDs)
	for _, id := range crossIDs {
		cf := fs.cross[id]
		final := cf.proxies[0].offer
		for _, p := range cf.proxies[1:] {
			if p.offer < final {
				final = p.offer
			}
		}
		cf.rate = final
		for i, p := range cf.proxies {
			p.pinned = true
			if p.rate != final {
				p.rate = final
				for _, l := range p.Path {
					fs.shards[cf.shards[i]].g.markDirty(l)
				}
			}
		}
	}

	// Phase C: re-waterfill around the pinned proxies (slack to locals).
	fs.runShards(func(sh *fleetShard) {
		sh.g.now = fs.now
		sh.noteReRated(sh.g.flush(false))
	})

	// Rates are now globally consistent: every dirty component has been
	// re-filled and the pinned proxies carry their barrier rates.
	if fs.onResolved != nil {
		fs.onResolved()
	}

	// Cross completions resolve at the barrier: a cross flow finishing
	// inside this epoch is recorded at its exact finish time and its
	// proxies leave their shards (capacity returns at the next barrier).
	crossDone := 0
	for _, id := range crossIDs {
		cf, ok := fs.cross[id]
		if !ok || cf.rate <= 0 {
			continue
		}
		at := fs.now + sim.Time(cf.remaining/cf.rate)
		if at <= epochEnd {
			fs.records = append(fs.records, FlowRecord{
				ID: cf.id, SizeBits: cf.sizeBits, Start: cf.start, End: at,
			})
			for i, s := range cf.shards {
				fs.shards[s].g.removeFlow(cf.proxies[i])
			}
			delete(fs.cross, id)
			crossDone++
			continue
		}
		cf.remaining -= cf.rate * float64(epochLen)
	}

	// Epoch run: refresh completion entries for re-rated local flows,
	// then drain each shard's heap to the epoch end at frozen rates.
	fs.runShards(func(sh *fleetShard) {
		sh.done = 0
		for _, f := range sh.reRated {
			if _, ok := sh.active[f.ID]; !ok {
				continue
			}
			f.ver++
			if f.rate > 0 {
				heap.Push(&sh.h, completion{
					at:  fs.now + sim.Time(f.remaining/f.rate),
					id:  f.ID,
					ver: f.ver,
				})
			}
		}
		sh.reRated = sh.reRated[:0]
		if len(sh.h) > 4*len(sh.active)+64 {
			sh.compact()
		}
		for len(sh.h) > 0 {
			head := sh.h[0]
			f, ok := sh.active[head.id]
			if !ok || f.ver != head.ver {
				heap.Pop(&sh.h)
				continue
			}
			if head.at > epochEnd {
				break
			}
			heap.Pop(&sh.h)
			sh.g.now = head.at
			sh.g.settle(f)
			sh.records = append(sh.records, FlowRecord{
				ID: f.ID, SizeBits: f.SizeBits, Start: f.start, End: head.at,
			})
			delete(sh.active, f.ID)
			sh.g.removeFlow(f)
			sh.done++
		}
	})

	// Epilogue: one deterministic log line per epoch.
	done := 0
	var perShard []string
	for _, sh := range fs.shards {
		done += sh.done
		perShard = append(perShard, fmt.Sprintf("%d", sh.done))
	}
	var capSum float64
	for _, c := range fs.capacity {
		capSum += c
	}
	fs.log = append(fs.log, fmt.Sprintf(
		"epoch=%d t=%.3f arrivals=%d cross_arrivals=%d stalls=%d done=%d cross_done=%d per_shard=[%s] active=%d cross=%d cap_sum=%.6e",
		fs.epochIdx, float64(fs.now), fs.arrivals, fs.crossArrivals, fs.stalls,
		done, crossDone, strings.Join(perShard, ","), fs.ActiveFlows(), len(fs.cross), capSum))
	fs.epochIdx++
	fs.arrivals, fs.crossArrivals, fs.stalls = 0, 0, 0
	fs.now = epochEnd
}

// noteReRated merges a flush's touched flows into the epoch's refresh
// set exactly once per flow (seen markers survive across phases A/C).
func (sh *fleetShard) noteReRated(touched []*incFlow) {
	for _, f := range touched {
		if f.proxy || f.seen == sh.seenGen {
			continue
		}
		f.seen = sh.seenGen
		sh.reRated = append(sh.reRated, f)
	}
}

// compact rebuilds the shard heap dropping stale entries.
func (sh *fleetShard) compact() {
	live := sh.h[:0]
	for _, c := range sh.h {
		if f, ok := sh.active[c.id]; ok && f.ver == c.ver {
			live = append(live, c)
		}
	}
	sh.h = live
	heap.Init(&sh.h)
}

// runShards executes fn once per shard, on fs.workers goroutines
// (GOMAXPROCS when <= 0). Shards never share mutable state during a
// phase, so the schedule cannot affect the result.
func (fs *FleetSim) runShards(fn func(*fleetShard)) {
	w := fs.workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > len(fs.shards) {
		w = len(fs.shards)
	}
	if w <= 1 {
		for _, sh := range fs.shards {
			fn(sh)
		}
		return
	}
	var wg sync.WaitGroup
	work := make(chan *fleetShard)
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for sh := range work {
				fn(sh)
			}
		}()
	}
	for _, sh := range fs.shards {
		work <- sh
	}
	close(work)
	wg.Wait()
}
