package netsim

// VCLinkMap fans per-virtual-channel capacity publications (from a MAC
// bridge's VCCapacitySink) out to individual flow-sim links. A Mosaic
// link carrying N virtual channels is modeled network-side as N parallel
// links, one per VC; when the physical link renegotiates, every VC link
// is rescaled to that VC's weighted share, so priority traffic keeps a
// proportionally larger slice of the degraded width.
//
// The zero value is unusable; fill FS and register each (macLink, vc)
// pair with Map before installing the bridge.
type VCLinkMap struct {
	FS    *FlowSim
	links map[[2]int]int
}

// NewVCLinkMap builds an empty map over a flow simulator.
func NewVCLinkMap(fs *FlowSim) *VCLinkMap {
	return &VCLinkMap{FS: fs, links: make(map[[2]int]int)}
}

// Map routes capacity updates for (macLinkID, vc) to a flow-sim link.
func (m *VCLinkMap) Map(macLinkID, vc, flowLinkID int) {
	m.links[[2]int{macLinkID, vc}] = flowLinkID
}

// SetVCCapacityFraction implements the MAC bridge's VCCapacitySink:
// unmapped (link, vc) pairs are ignored, mapped ones rescale their
// flow-sim link.
func (m *VCLinkMap) SetVCCapacityFraction(macLinkID, vc int, frac float64) {
	if l, ok := m.links[[2]int{macLinkID, vc}]; ok {
		m.FS.SetLinkCapacityFraction(l, frac)
	}
}
