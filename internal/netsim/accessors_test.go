package netsim

import (
	"testing"

	"mosaic/internal/sim"
)

func TestLinksByTier(t *testing.T) {
	topo := mustTree(t, 4)
	byTier := topo.LinksByTier()
	if len(byTier[TierHostToR]) != 16 {
		t.Errorf("host links = %d", len(byTier[TierHostToR]))
	}
	if len(byTier[TierToRAgg]) != 16 || len(byTier[TierAggCore]) != 16 {
		t.Errorf("fabric links = %d/%d", len(byTier[TierToRAgg]), len(byTier[TierAggCore]))
	}
	total := 0
	for _, ids := range byTier {
		total += len(ids)
	}
	if total != len(topo.Links) {
		t.Error("partition incomplete")
	}
}

func TestNeighbors(t *testing.T) {
	topo := mustTree(t, 4)
	h := topo.Hosts()[0]
	if n := topo.neighbors(h); len(n) != 1 {
		t.Errorf("host neighbors = %d, want 1", len(n))
	}
}

func TestActiveFlows(t *testing.T) {
	topo := mustTree(t, 4)
	eng := sim.NewEngine(1)
	fs := NewFlowSim(topo, eng)
	h := topo.Hosts()
	if fs.ActiveFlows() != 0 {
		t.Error("fresh sim has flows")
	}
	if _, err := fs.StartFlow(h[0], h[1], 1e9, 0); err != nil {
		t.Fatal(err)
	}
	if fs.ActiveFlows() != 1 {
		t.Errorf("active = %d", fs.ActiveFlows())
	}
	eng.Run()
	if fs.ActiveFlows() != 0 {
		t.Error("flows remain after completion")
	}
}
