package netsim

import (
	"errors"
	"fmt"

	"mosaic/internal/power"
	"mosaic/internal/reliability"
)

// TechPlan assigns a link technology to each tier. Feasibility is checked
// against the technologies' nominal reach and each tier's physical length.
type TechPlan struct {
	Name   string
	ByTier map[Tier]power.Tech
}

// CopperOpticsBaseline is today's deployment: copper in the rack, optics
// everywhere else.
func CopperOpticsBaseline() TechPlan {
	return TechPlan{
		Name: "DAC+optics",
		ByTier: map[Tier]power.Tech{
			TierHostToR: power.DAC,
			TierToRAgg:  power.AOC,
			TierAggCore: power.DR,
		},
	}
}

// AllOptics is the all-DSP-optics comparison point (what dense AI fabrics
// increasingly deploy when copper reach runs out).
func AllOptics() TechPlan {
	return TechPlan{
		Name: "all-optics",
		ByTier: map[Tier]power.Tech{
			TierHostToR: power.AOC,
			TierToRAgg:  power.DR,
			TierAggCore: power.DR,
		},
	}
}

// MosaicPlan deploys Mosaic on every tier its 50 m reach covers and keeps
// DSP optics only for the long cross-hall runs.
func MosaicPlan() TechPlan {
	return TechPlan{
		Name: "mosaic",
		ByTier: map[Tier]power.Tech{
			TierHostToR: power.Mosaic,
			TierToRAgg:  power.Mosaic,
			TierAggCore: power.DR,
		},
	}
}

// Plans returns the standard comparison set.
func Plans() []TechPlan {
	return []TechPlan{CopperOpticsBaseline(), AllOptics(), MosaicPlan()}
}

// Validate checks that every tier has a technology whose reach covers the
// tier's typical length.
func (p TechPlan) Validate() error {
	for _, tier := range Tiers() {
		tech, ok := p.ByTier[tier]
		if !ok {
			return fmt.Errorf("netsim: plan %q misses tier %v", p.Name, tier)
		}
		if tech.NominalReachM() < tier.TypicalLengthM() {
			return fmt.Errorf("netsim: plan %q: %v reach %.0fm cannot span %v (%.0fm)",
				p.Name, tech, tech.NominalReachM(), tier, tier.TypicalLengthM())
		}
	}
	return nil
}

// NetworkReport aggregates network-wide link power, reliability, and cost
// for a plan applied to a topology.
type NetworkReport struct {
	Plan            string
	Links           int
	PowerW          float64 // total link (transceiver-pair) power
	PowerByTier     map[Tier]float64
	FailuresPerYear float64 // expected link failures per year, fleet-wide
	LinkFITMean     float64
	CapexUSD        float64 // modules + cables, fleet-wide
}

// USDPerKWh is the electricity price used for opex estimates.
const USDPerKWh = 0.10

// OpexUSDPerYear returns the yearly energy cost of the links (with the
// standard ~1.5x datacenter cooling overhead, PUE).
func (r NetworkReport) OpexUSDPerYear() float64 {
	const pue = 1.5
	return r.PowerW * pue / 1000 * 8766 * USDPerKWh
}

// TCOUSD returns capex plus opex over the given number of years.
func (r NetworkReport) TCOUSD(years float64) float64 {
	return r.CapexUSD + r.OpexUSDPerYear()*years
}

// Analyze applies a plan to a topology at the given per-link rate.
func Analyze(t *Topology, p TechPlan, rateBps float64) (NetworkReport, error) {
	if err := p.Validate(); err != nil {
		return NetworkReport{}, err
	}
	if t == nil {
		return NetworkReport{}, errors.New("netsim: nil topology")
	}
	rep := NetworkReport{
		Plan:        p.Name,
		Links:       len(t.Links),
		PowerByTier: make(map[Tier]float64),
	}
	var fitTotal float64
	const mission = 5 * reliability.HoursPerYear
	for _, l := range t.Links {
		tech := p.ByTier[l.Tier]
		b, err := power.PerBudget(tech, rateBps)
		if err != nil {
			return NetworkReport{}, err
		}
		rep.PowerW += b.TotalW()
		rep.PowerByTier[l.Tier] += b.TotalW()

		if c, err := power.Cost(tech, rateBps, l.LengthM); err == nil {
			rep.CapexUSD += c.TotalUSD()
		} else {
			// Length beyond the tech's reach: the plan validated against
			// typical lengths, so this only happens for custom topologies;
			// charge the nearest buildable option instead.
			if _, cc, err2 := power.CheapestAt(rateBps, l.LengthM); err2 == nil {
				rep.CapexUSD += cc.TotalUSD()
			}
		}

		var fit reliability.FIT
		switch tech {
		case power.DAC:
			fit = 2 * reliability.FITConnector
		case power.AOC, power.LPO, power.CPO:
			fit = reliability.LinkFIT(reliability.FITLaserVCSEL, 8)
		case power.DR:
			fit = reliability.LinkFIT(reliability.FITLaserDFB, 8)
		case power.Mosaic:
			data := int(rateBps / power.MosaicChannelRate)
			spares := power.MosaicChannels(rateBps) - data
			fit = reliability.MosaicLinkFIT(data, spares, mission)
		}
		fitTotal += float64(fit)
	}
	rep.LinkFITMean = fitTotal / float64(len(t.Links))
	// failures/year = sum(lambda) * hours/year.
	rep.FailuresPerYear = fitTotal / 1e9 * reliability.HoursPerYear
	return rep, nil
}
