// Package netsim provides the datacenter-scale analysis layer: fat-tree
// topology generation with physical link lengths, per-tier link-technology
// assignment (with reach feasibility), network-wide power/reliability
// accounting, and a flow-level max-min fair simulator with failure
// injection.
//
// It exists to answer the paper's system-level question: what changes when
// the 2 m copper / power-hungry optics dichotomy is replaced by a 50 m,
// copper-power link? (Experiments E11 and E12.)
package netsim

import (
	"errors"
	"fmt"
)

// Tier labels where a link sits in the hierarchy.
type Tier int

// Link tiers, by distance from the server.
const (
	TierHostToR Tier = iota // server NIC to top-of-rack switch
	TierToRAgg              // ToR to aggregation (in-row)
	TierAggCore             // aggregation to core/spine (cross-hall)
)

// String names the tier.
func (t Tier) String() string {
	switch t {
	case TierHostToR:
		return "host-tor"
	case TierToRAgg:
		return "tor-agg"
	case TierAggCore:
		return "agg-core"
	default:
		return fmt.Sprintf("tier(%d)", int(t))
	}
}

// Tiers lists all tiers in order.
func Tiers() []Tier { return []Tier{TierHostToR, TierToRAgg, TierAggCore} }

// TypicalLengthM returns the representative physical cable length per tier
// (from published datacenter cabling studies: in-rack ~2 m, in-row
// ~10-30 m, cross-hall ~50-300 m).
func (t Tier) TypicalLengthM() float64 {
	switch t {
	case TierHostToR:
		return 2
	case TierToRAgg:
		return 20
	case TierAggCore:
		return 120
	default:
		return 0
	}
}

// NodeKind classifies a topology node.
type NodeKind int

// Node kinds.
const (
	NodeHost NodeKind = iota
	NodeEdge          // ToR
	NodeAgg
	NodeCore
)

// String names the kind.
func (k NodeKind) String() string {
	switch k {
	case NodeHost:
		return "host"
	case NodeEdge:
		return "edge"
	case NodeAgg:
		return "agg"
	case NodeCore:
		return "core"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Node is a topology vertex.
type Node struct {
	ID   int
	Kind NodeKind
	Pod  int // -1 for core
}

// Link is a bidirectional topology edge.
type Link struct {
	ID      int
	A, B    int // node IDs
	Tier    Tier
	LengthM float64
	RateBps float64
}

// Topology is a k-ary fat-tree.
type Topology struct {
	K     int
	Nodes []Node
	Links []Link
	// adjacency: node -> link IDs
	adj [][]int
	// hostIDs in order
	hosts []int
}

// NewFatTree builds the standard k-ary fat-tree: k pods, each with k/2
// edge and k/2 aggregation switches; (k/2)² core switches; k³/4 hosts.
// Link rates are uniform at linkRate.
func NewFatTree(k int, linkRate float64) (*Topology, error) {
	if k < 2 || k%2 != 0 {
		return nil, errors.New("netsim: fat-tree k must be even and >= 2")
	}
	if linkRate <= 0 {
		return nil, errors.New("netsim: link rate must be positive")
	}
	t := &Topology{K: k}
	half := k / 2

	addNode := func(kind NodeKind, pod int) int {
		id := len(t.Nodes)
		t.Nodes = append(t.Nodes, Node{ID: id, Kind: kind, Pod: pod})
		return id
	}
	addLink := func(a, b int, tier Tier) {
		id := len(t.Links)
		t.Links = append(t.Links, Link{
			ID: id, A: a, B: b, Tier: tier,
			LengthM: tier.TypicalLengthM(), RateBps: linkRate,
		})
	}

	// Core switches: half*half.
	cores := make([]int, 0, half*half)
	for i := 0; i < half*half; i++ {
		cores = append(cores, addNode(NodeCore, -1))
	}
	// Pods.
	for p := 0; p < k; p++ {
		edges := make([]int, 0, half)
		aggs := make([]int, 0, half)
		for i := 0; i < half; i++ {
			edges = append(edges, addNode(NodeEdge, p))
		}
		for i := 0; i < half; i++ {
			aggs = append(aggs, addNode(NodeAgg, p))
		}
		// Hosts: each edge switch serves k/2 hosts.
		for _, e := range edges {
			for h := 0; h < half; h++ {
				host := addNode(NodeHost, p)
				t.hosts = append(t.hosts, host)
				addLink(host, e, TierHostToR)
			}
		}
		// Edge <-> Agg full bipartite within pod.
		for _, e := range edges {
			for _, a := range aggs {
				addLink(e, a, TierToRAgg)
			}
		}
		// Agg <-> Core: agg switch i connects to cores [i*half, (i+1)*half).
		for i, a := range aggs {
			for j := 0; j < half; j++ {
				addLink(a, cores[i*half+j], TierAggCore)
			}
		}
	}

	t.adj = make([][]int, len(t.Nodes))
	for _, l := range t.Links {
		t.adj[l.A] = append(t.adj[l.A], l.ID)
		t.adj[l.B] = append(t.adj[l.B], l.ID)
	}
	return t, nil
}

// Hosts returns the host node IDs.
func (t *Topology) Hosts() []int { return t.hosts }

// NumHosts returns k³/4.
func (t *Topology) NumHosts() int { return len(t.hosts) }

// LinksByTier partitions link IDs by tier.
func (t *Topology) LinksByTier() map[Tier][]int {
	out := make(map[Tier][]int)
	for _, l := range t.Links {
		out[l.Tier] = append(out[l.Tier], l.ID)
	}
	return out
}

// neighbors returns (link, peer) pairs for a node.
func (t *Topology) neighbors(node int) []int { return t.adj[node] }

// peer returns the other endpoint of link l relative to node n.
func (t *Topology) peer(l Link, n int) int {
	if l.A == n {
		return l.B
	}
	return l.A
}

// Path computes the canonical fat-tree up/down route between two hosts,
// using `hash` to pick among the ECMP choices at each up hop. It returns
// the link IDs in order. Same-host requests return an empty path.
func (t *Topology) Path(src, dst int, hash uint64) ([]int, error) {
	if src < 0 || src >= len(t.Nodes) || dst < 0 || dst >= len(t.Nodes) {
		return nil, errors.New("netsim: node out of range")
	}
	if t.Nodes[src].Kind != NodeHost || t.Nodes[dst].Kind != NodeHost {
		return nil, errors.New("netsim: paths are host-to-host")
	}
	if src == dst {
		return nil, nil
	}
	// Host -> edge.
	upLinks := t.adj[src]
	if len(upLinks) == 0 {
		return nil, errors.New("netsim: host has no uplink")
	}
	l0 := t.Links[upLinks[0]]
	edgeSrc := t.peer(l0, src)
	// Destination's edge switch.
	ld := t.Links[t.adj[dst][0]]
	edgeDst := t.peer(ld, dst)

	if edgeSrc == edgeDst {
		return []int{l0.ID, ld.ID}, nil
	}

	// Collect the up options at the edge: links to agg/spine switches.
	aggLinks := t.upLinks(edgeSrc, NodeAgg)
	if len(aggLinks) == 0 {
		return nil, errors.New("netsim: edge has no agg uplinks")
	}
	la := aggLinks[int(hash%uint64(len(aggLinks)))]
	agg := t.peer(t.Links[la], edgeSrc)

	// Two-hop route through a shared aggregation switch: always available
	// within a fat-tree pod and between any two leaves of a leaf-spine.
	for _, lid := range t.adj[agg] {
		l := t.Links[lid]
		if t.peer(l, agg) == edgeDst {
			return []int{l0.ID, la, lid, ld.ID}, nil
		}
	}
	if t.Nodes[edgeSrc].Pod == t.Nodes[edgeDst].Pod {
		return nil, errors.New("netsim: intra-pod path broken")
	}

	// Cross-pod: continue up to the core: edge -> agg -> core -> agg' -> edge'.
	coreLinks := t.upLinks(agg, NodeCore)
	if len(coreLinks) == 0 {
		return nil, errors.New("netsim: agg has no core uplinks")
	}
	lc := coreLinks[int((hash/7)%uint64(len(coreLinks)))]
	core := t.peer(t.Links[lc], agg)
	// Core -> agg in destination pod (exactly one by construction).
	var laDown, aggDown int = -1, -1
	for _, lid := range t.adj[core] {
		l := t.Links[lid]
		p := t.peer(l, core)
		if t.Nodes[p].Kind == NodeAgg && t.Nodes[p].Pod == t.Nodes[edgeDst].Pod {
			laDown, aggDown = lid, p
			break
		}
	}
	if laDown < 0 {
		return nil, errors.New("netsim: core not connected to destination pod")
	}
	// Agg' -> edge'.
	for _, lid := range t.adj[aggDown] {
		l := t.Links[lid]
		if t.peer(l, aggDown) == edgeDst {
			return []int{l0.ID, la, lc, laDown, lid, ld.ID}, nil
		}
	}
	return nil, errors.New("netsim: cross-pod path broken")
}

// upLinks returns links from node to peers of the given kind.
func (t *Topology) upLinks(node int, kind NodeKind) []int {
	var out []int
	for _, lid := range t.adj[node] {
		l := t.Links[lid]
		if t.Nodes[t.peer(l, node)].Kind == kind {
			out = append(out, lid)
		}
	}
	return out
}

// CountNodes returns node counts by kind.
func (t *Topology) CountNodes() map[NodeKind]int {
	out := make(map[NodeKind]int)
	for _, n := range t.Nodes {
		out[n.Kind]++
	}
	return out
}
