package netsim

import "errors"

// NewFleet builds a multi-pod fleet: `pods` independent leaf-spine pods
// (leaves × spines bipartite, hostsPerLeaf hosts per leaf) joined by
// `spines` core switches, where core i connects to spine i of every
// pod. That plane-aligned core wiring makes the standard fat-tree
// up/down Path() work unchanged: intra-pod traffic turns around at a
// shared spine (NodeAgg), cross-pod traffic climbs spine i to core i
// and descends into the destination pod through its spine i.
//
// The fleet is the unit the sharded flow engine simulates: every
// intra-pod link belongs to exactly one pod, spine-core links belong to
// the pod of their spine endpoint, and a flow therefore touches the
// links of at most two pods (its source pod and, if cross-pod, its
// destination pod plus the two core hops — each owned by one of those
// same two pods). LinkShards exposes that owner map.
func NewFleet(pods, leaves, spines, hostsPerLeaf int, linkRate float64) (*Topology, error) {
	if pods <= 0 || leaves <= 0 || spines <= 0 || hostsPerLeaf <= 0 {
		return nil, errors.New("netsim: fleet needs positive pods, leaves, spines, hosts")
	}
	if linkRate <= 0 {
		return nil, errors.New("netsim: link rate must be positive")
	}
	t := &Topology{K: 0}

	addNode := func(kind NodeKind, pod int) int {
		id := len(t.Nodes)
		t.Nodes = append(t.Nodes, Node{ID: id, Kind: kind, Pod: pod})
		return id
	}
	addLink := func(a, b int, tier Tier) {
		id := len(t.Links)
		t.Links = append(t.Links, Link{
			ID: id, A: a, B: b, Tier: tier,
			LengthM: tier.TypicalLengthM(), RateBps: linkRate,
		})
	}

	cores := make([]int, 0, spines)
	for c := 0; c < spines; c++ {
		cores = append(cores, addNode(NodeCore, -1))
	}
	for p := 0; p < pods; p++ {
		leafIDs := make([]int, 0, leaves)
		for l := 0; l < leaves; l++ {
			leafIDs = append(leafIDs, addNode(NodeEdge, p))
		}
		spineIDs := make([]int, 0, spines)
		for s := 0; s < spines; s++ {
			spineIDs = append(spineIDs, addNode(NodeAgg, p))
		}
		for _, leaf := range leafIDs {
			for h := 0; h < hostsPerLeaf; h++ {
				host := addNode(NodeHost, p)
				t.hosts = append(t.hosts, host)
				addLink(host, leaf, TierHostToR)
			}
			for _, s := range spineIDs {
				addLink(leaf, s, TierToRAgg)
			}
		}
		for i, s := range spineIDs {
			addLink(s, cores[i], TierAggCore)
		}
	}

	t.adj = make([][]int, len(t.Nodes))
	for _, l := range t.Links {
		t.adj[l.A] = append(t.adj[l.A], l.ID)
		t.adj[l.B] = append(t.adj[l.B], l.ID)
	}
	return t, nil
}

// LinkShards assigns every link of a fleet topology to a shard (its
// pod): the pod of whichever endpoint is a pod node. Spine-core links
// belong to the pod of their spine, so a cross-pod path spans exactly
// the shards of its two endpoint pods.
func LinkShards(t *Topology) []int {
	shards := make([]int, len(t.Links))
	for i, l := range t.Links {
		pod := t.Nodes[l.A].Pod
		if pod < 0 {
			pod = t.Nodes[l.B].Pod
		}
		shards[i] = pod
	}
	return shards
}

// NumPods returns the number of distinct pods in the topology.
func NumPods(t *Topology) int {
	max := -1
	for _, n := range t.Nodes {
		if n.Pod > max {
			max = n.Pod
		}
	}
	return max + 1
}
