// Package core is the public face of the Mosaic reproduction: it assembles
// the device physics (photonics), medium (fiber), link analysis (channel),
// digital pipeline (phy), power, and reliability models into one Design
// object that can be analysed (budgets, reach, power, availability) and
// instantiated as a bit-true simulated link.
//
// Typical use:
//
//	d := core.DefaultDesign()            // the paper's 100×2G prototype
//	rep, _ := d.Evaluate()               // per-channel BERs, margins
//	link, _ := d.BuildPHY()              // runnable bit-true link
//	out, stats, _ := link.Exchange(frames)
package core

import (
	"errors"
	"fmt"
	"math"

	"mosaic/internal/channel"
	"mosaic/internal/fiber"
	"mosaic/internal/photonics"
	"mosaic/internal/phy"
)

// Design is a complete Mosaic link configuration.
type Design struct {
	// Aggregate user rate (bit/s) and per-channel line rate.
	AggregateRate float64
	ChannelRate   float64
	Spares        int

	// Physical path.
	LengthM        float64
	LateralOffsetM float64 // connector misalignment
	SpotDiameterM  float64 // imaged LED spot on the fiber facet
	ChannelPitchM  float64 // centre-to-centre channel spacing

	// Devices.
	LED       photonics.MicroLED
	Fiber     fiber.ImagingFiber
	Receiver  photonics.Receiver
	Variation photonics.Variation

	// Signalling.
	ExtinctionRatioDB float64
	Modulation        channel.Modulation

	// Digital pipeline.
	FEC phy.FEC

	// Workers caps the PHY's per-lane parallelism (0 = GOMAXPROCS,
	// 1 = serial); any value yields bit-identical results for one Seed.
	Workers int

	Seed int64
}

// DefaultDesign returns the paper's end-to-end prototype: 100 channels ×
// 2 Gbps (200G aggregate) over 2 m of imaging fiber, with 4 spares.
func DefaultDesign() Design {
	return Design{
		AggregateRate:     200e9,
		ChannelRate:       2e9,
		Spares:            4,
		LengthM:           2,
		SpotDiameterM:     40e-6,
		ChannelPitchM:     50e-6,
		LED:               photonics.DefaultMicroLED(),
		Fiber:             fiber.DefaultImagingFiber(),
		Receiver:          photonics.MosaicReceiver(),
		Variation:         photonics.DefaultVariation(),
		ExtinctionRatioDB: 12,
		Modulation:        channel.NRZ,
		FEC:               phy.NewRSLite(),
		Seed:              1,
	}
}

// Design800G returns the 800 Gbps scale point: 400 channels × 2 Gbps plus
// 16 spares, at 10 m. The denser channel grid (25 µm pitch, 20 µm spots)
// fits 400+ channels in the same imaging bundle — this is the "scales to
// 800 Gbps and beyond" configuration.
func Design800G() Design {
	d := DefaultDesign()
	d.AggregateRate = 800e9
	d.Spares = 16
	d.LengthM = 10
	d.ChannelPitchM = 25e-6
	d.SpotDiameterM = 20e-6
	return d
}

// WithOptics derives the channel spot size and the system-level extraction
// efficiency from an explicit imaging train instead of the folded-in
// defaults: the spot becomes the imaged (and defocus-blurred) LED, and the
// LED's ExtractionEff becomes chip-level extraction × the optics' total
// insertion (capture, NA match, transmission). Use this to study lens
// choices and focus tolerances (experiment E19).
func (d Design) WithOptics(o fiber.ImagingOptics, chipExtraction float64) (Design, error) {
	if err := o.Validate(); err != nil {
		return Design{}, err
	}
	if chipExtraction <= 0 || chipExtraction > 1 {
		return Design{}, errors.New("core: chip extraction must be in (0,1]")
	}
	out := d
	out.SpotDiameterM = o.SpotDiameterM(d.LED.DiameterM)
	out.LED.ExtractionEff = chipExtraction *
		math.Pow(10, -o.TotalInsertionDB(d.Fiber.NA)/10)
	if err := out.Validate(); err != nil {
		return Design{}, err
	}
	return out, nil
}

// Validate checks the design for physical consistency.
func (d Design) Validate() error {
	switch {
	case d.AggregateRate <= 0 || d.ChannelRate <= 0:
		return errors.New("core: rates must be positive")
	case d.Spares < 0:
		return errors.New("core: spares cannot be negative")
	case d.LengthM < 0:
		return errors.New("core: length cannot be negative")
	case d.SpotDiameterM <= 0 || d.ChannelPitchM <= 0:
		return errors.New("core: spot and pitch must be positive")
	case d.SpotDiameterM > d.ChannelPitchM:
		return errors.New("core: channel spots overlap (spot > pitch)")
	case d.ExtinctionRatioDB <= 0:
		return errors.New("core: extinction ratio must be positive")
	}
	if err := d.LED.Validate(); err != nil {
		return err
	}
	if err := d.Fiber.Validate(); err != nil {
		return err
	}
	if err := d.Receiver.Validate(); err != nil {
		return err
	}
	if d.DataChannels() < 1 {
		return errors.New("core: aggregate rate below one channel")
	}
	if got := d.Fiber.MaxChannels(d.ChannelPitchM); got < d.TotalChannels() {
		return fmt.Errorf("core: bundle fits only %d channels, need %d", got, d.TotalChannels())
	}
	return nil
}

// DataChannels returns the number of data-bearing channels.
func (d Design) DataChannels() int {
	return int(d.AggregateRate / d.ChannelRate)
}

// TotalChannels returns data + spare channels.
func (d Design) TotalChannels() int { return d.DataChannels() + d.Spares }

// channelParams builds the analog parameters for one channel at the given
// length, applying a variation sample.
func (d Design) channelParams(lengthM float64, s photonics.ChannelSample) channel.OpticalParams {
	i := d.LED.NominalCurrent()
	rx := d.Receiver
	rx.PD.PeakRespAPerW *= s.RespFactor
	coupling := d.Fiber.CouplingLossDB(d.SpotDiameterM, d.LateralOffsetM)
	// Crosstalk: fiber core coupling plus misalignment leakage into the
	// neighbour, combined in linear power.
	xt := combineDB(
		d.Fiber.AdjacentCrosstalkDB(lengthM),
		d.Fiber.MisalignedNeighborLeakDB(d.SpotDiameterM, d.LateralOffsetM, d.ChannelPitchM),
	)
	return channel.OpticalParams{
		TxPowerW:          d.LED.OpticalPower(i) / 2 * s.EQEFactor, // OOK average
		TxBandwidthHz:     d.LED.Bandwidth(i) * s.BandwidthFactor,
		WavelengthM:       d.LED.WavelengthM,
		RINdBHz:           d.LED.RINdBHz,
		ExtinctionRatioDB: d.ExtinctionRatioDB,
		PathLossDB:        coupling*2 + d.Fiber.AttenuationDB(lengthM),
		MediumBWHz:        d.Fiber.ModalBandwidth(lengthM),
		CrosstalkDB:       xt,
		Rx:                rx,
		BitRate:           d.ChannelRate,
		Modulation:        d.Modulation,
	}
}

// combineDB adds two relative power levels given in dB (e.g. two crosstalk
// contributions), returning the dB of the linear sum. -Inf inputs are
// transparent.
func combineDB(a, b float64) float64 {
	sum := math.Pow(10, a/10) + math.Pow(10, b/10)
	if sum <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(sum)
}
