package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"mosaic/internal/channel"
	"mosaic/internal/photonics"
	"mosaic/internal/phy"
	"mosaic/internal/power"
	"mosaic/internal/reliability"
)

// ChannelResult is the analog evaluation of one channel.
type ChannelResult struct {
	Index      int
	Dead       bool
	BER        float64
	Q          float64
	MarginDB   float64
	RxPowerDBm float64
}

// LinkReport summarises the per-channel analysis of a design.
type LinkReport struct {
	Channels []ChannelResult
	// Aggregates over live channels.
	MedianBER   float64
	WorstBER    float64
	WorstMargin float64
	DeadCount   int
	// BelowTarget counts live channels failing the pre-FEC 1e-12 target.
	BelowTarget int
}

// Evaluate runs the analog link budget for every channel, applying
// manufacturing variation drawn deterministically from the design seed.
func (d Design) Evaluate() (LinkReport, error) {
	return d.evaluate(true)
}

// evaluate runs the per-channel link budget; withMargin selects the full
// Evaluate (margin bisection included) or the ~50x cheaper EvaluateBasic.
// The variation draw sequence and every non-margin figure are identical
// either way, so a BER-only caller sees the exact same channel population.
func (d Design) evaluate(withMargin bool) (LinkReport, error) {
	if err := d.Validate(); err != nil {
		return LinkReport{}, err
	}
	rng := rand.New(rand.NewSource(d.Seed))
	n := d.TotalChannels()
	rep := LinkReport{Channels: make([]ChannelResult, n)}
	var live []float64
	rep.WorstMargin = math.Inf(1)
	for i := 0; i < n; i++ {
		s := d.Variation.Sample(rng)
		cr := ChannelResult{Index: i}
		if s.Dead {
			cr.Dead = true
			cr.BER = 0.5
			cr.MarginDB = math.Inf(-1)
			rep.DeadCount++
		} else {
			p := d.channelParams(d.LengthM, s)
			var res channel.Result
			var err error
			if withMargin {
				res, err = p.Evaluate()
			} else {
				res, err = p.EvaluateBasic()
			}
			if err != nil {
				return LinkReport{}, fmt.Errorf("core: channel %d: %w", i, err)
			}
			cr.BER = res.BER
			cr.Q = res.Q
			cr.MarginDB = res.MarginDB
			cr.RxPowerDBm = res.RxPowerDBm
			live = append(live, res.BER)
			if res.BER > 1e-12 {
				rep.BelowTarget++
			}
			if res.MarginDB < rep.WorstMargin {
				rep.WorstMargin = res.MarginDB
			}
			if res.BER > rep.WorstBER {
				rep.WorstBER = res.BER
			}
		}
		rep.Channels[i] = cr
	}
	if len(live) > 0 {
		sort.Float64s(live)
		rep.MedianBER = live[len(live)/2]
	}
	return rep, nil
}

// NominalOpticalParams returns the analog parameters of a variation-free
// channel at the design length, for callers that want to drive the channel
// package directly (eye simulation, custom sweeps).
func (d Design) NominalOpticalParams() channel.OpticalParams {
	s := photonics.ChannelSample{EQEFactor: 1, BandwidthFactor: 1, RespFactor: 1}
	return d.channelParams(d.LengthM, s)
}

// NominalChannel evaluates a variation-free channel at the design length,
// returning the full analog result (received power, eye, Q, BER, margin).
func (d Design) NominalChannel() (channel.Result, error) {
	if err := d.Validate(); err != nil {
		return channel.Result{}, err
	}
	s := photonics.ChannelSample{EQEFactor: 1, BandwidthFactor: 1, RespFactor: 1}
	return d.channelParams(d.LengthM, s).Evaluate()
}

// NominalBER returns the BER of a variation-free channel at the design
// length (the curve plotted in E4).
func (d Design) NominalBER() float64 {
	return d.NominalBERAt(d.LengthM)
}

// NominalBERAt returns the variation-free channel BER at a given length.
func (d Design) NominalBERAt(lengthM float64) float64 {
	s := photonics.ChannelSample{EQEFactor: 1, BandwidthFactor: 1, RespFactor: 1}
	return d.channelParams(lengthM, s).BER()
}

// MaxReach returns the longest fiber at which a variation-free channel
// stays at or below the target BER.
func (d Design) MaxReach(targetBER float64) float64 {
	s := photonics.ChannelSample{EQEFactor: 1, BandwidthFactor: 1, RespFactor: 1}
	p := d.channelParams(0, s)
	return p.MaxReach(targetBER, d.Fiber.AttenDBPerM, func(l float64) float64 {
		return d.Fiber.ModalBandwidth(l)
	})
}

// PowerBudget returns the component-level power budget for this design's
// aggregate rate. Canonical rates use the calibrated table; other rates
// are composed from the per-channel model.
func (d Design) PowerBudget() power.Budget {
	if b, err := power.PerBudget(power.Mosaic, d.AggregateRate); err == nil {
		return b
	}
	ch := float64(d.TotalChannels())
	scale := d.AggregateRate / 800e9
	gscale := scale
	if gscale < 0.4 {
		gscale = 0.4
	}
	return power.Budget{
		Tech:    power.Mosaic,
		RateBps: d.AggregateRate,
		Components: []power.Component{
			{Name: "led-driver-array", PowerW: power.ChannelPowerW(d.ChannelRate) * ch * 2 * 0.7},
			{Name: "tia-array", PowerW: power.ChannelPowerW(d.ChannelRate) * ch * 2 * 0.3},
			{Name: "gearbox", PowerW: 0.95 * gscale * 2},
			{Name: "clocking", PowerW: 0.20 * scale * 2},
			{Name: "module-misc", PowerW: 0.10 * scale * 2},
		},
	}
}

// Reliability returns the spared-system reliability of the design over a
// mission of the given number of years.
func (d Design) Reliability(years float64) (effective reliability.FIT, survival float64) {
	hours := years * reliability.HoursPerYear
	sys := reliability.MosaicSystem(d.DataChannels(), d.Spares)
	return reliability.MosaicLinkFIT(d.DataChannels(), d.Spares, hours),
		sys.SurvivalProb(hours)
}

// Availability returns steady-state availability with channel repair at
// the given MTTR (hours). Repair here means replacing the cable/module.
func (d Design) Availability(mttrHours float64) (float64, error) {
	r := reliability.RepairableSystem{
		SparedSystem: reliability.MosaicSystem(d.DataChannels(), d.Spares),
		MTTRHours:    mttrHours,
	}
	return r.Availability()
}

// BuildPHY instantiates the bit-true PHY link with per-channel BERs drawn
// from the analog evaluation (same seed => same channel population). Only
// Dead/BER feed the PHY, so the margin-free evaluation suffices — the
// channel population is bit-identical to the full Evaluate's.
func (d Design) BuildPHY() (*phy.Link, error) {
	rep, err := d.evaluate(false)
	if err != nil {
		return nil, err
	}
	link, err := phy.New(phy.Config{
		Lanes:             d.DataChannels(),
		Spares:            d.Spares,
		FEC:               d.FEC,
		PerChannelBitRate: d.ChannelRate,
		Seed:              d.Seed,
		Workers:           d.Workers,
	})
	if err != nil {
		return nil, err
	}
	for _, cr := range rep.Channels {
		if cr.Dead {
			link.KillChannel(cr.Index)
		} else {
			link.SetChannelBER(cr.Index, cr.BER)
		}
	}
	// Power-on self-test: probe every channel (spares included), take dead
	// ones out of service, and spare them — no oracle knowledge, just the
	// same probes real hardware runs at bring-up.
	link.Bringup(8)
	return link, nil
}

// TechSummary is one row of the trade-off table (experiment E1).
type TechSummary struct {
	Tech     power.Tech
	ReachM   float64
	PowerW   float64
	PJPerBit float64
	LinkFIT  float64
}

// CompareTechnologies builds the reach/power/reliability trade-off table
// at a canonical aggregate rate. Mosaic's reach row uses this design's
// analog model rather than the nominal constant.
func (d Design) CompareTechnologies(rateBps float64) ([]TechSummary, error) {
	const mission = 5 * reliability.HoursPerYear
	var out []TechSummary
	for _, tech := range power.AllTechs() {
		b, err := power.PerBudget(tech, rateBps)
		if err != nil {
			return nil, err
		}
		row := TechSummary{
			Tech:     tech,
			ReachM:   tech.NominalReachM(),
			PowerW:   b.TotalW(),
			PJPerBit: b.PJPerBit(),
		}
		switch tech {
		case power.DAC:
			row.ReachM = channel.Twinax26AWG().MaxReach(
				channel.NyquistHz(rateBps/8, channel.PAM4), 28)
			row.LinkFIT = float64(2 * reliability.FITConnector)
		case power.AOC, power.LPO, power.CPO:
			row.LinkFIT = float64(reliability.LinkFIT(reliability.FITLaserVCSEL, 8))
		case power.DR:
			row.LinkFIT = float64(reliability.LinkFIT(reliability.FITLaserDFB, 8))
		case power.Mosaic:
			scaled := d
			scaled.AggregateRate = rateBps
			scaled.Spares = power.MosaicChannels(rateBps) - int(rateBps/power.MosaicChannelRate)
			row.ReachM = scaled.MaxReach(1e-12)
			row.LinkFIT = float64(reliability.MosaicLinkFIT(
				scaled.DataChannels(), scaled.Spares, mission))
		}
		out = append(out, row)
	}
	return out, nil
}
