package core

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"mosaic/internal/channel"
	"mosaic/internal/fiber"
	"mosaic/internal/phy"
	"mosaic/internal/power"
)

func TestDefaultDesignValid(t *testing.T) {
	if err := DefaultDesign().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := Design800G().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDesignValidationRejects(t *testing.T) {
	cases := []func(*Design){
		func(d *Design) { d.AggregateRate = 0 },
		func(d *Design) { d.ChannelRate = -1 },
		func(d *Design) { d.Spares = -1 },
		func(d *Design) { d.LengthM = -1 },
		func(d *Design) { d.SpotDiameterM = 0 },
		func(d *Design) { d.SpotDiameterM = d.ChannelPitchM * 2 },
		func(d *Design) { d.ExtinctionRatioDB = 0 },
		func(d *Design) { d.ChannelRate = d.AggregateRate * 2 }, // < 1 channel
		func(d *Design) { d.AggregateRate = 100e12 },            // bundle too small
	}
	for i, mutate := range cases {
		d := DefaultDesign()
		mutate(&d)
		if err := d.Validate(); err == nil {
			t.Errorf("case %d: accepted invalid design", i)
		}
	}
}

func TestChannelCounts(t *testing.T) {
	d := DefaultDesign()
	if d.DataChannels() != 100 || d.TotalChannels() != 104 {
		t.Errorf("channels = %d/%d, want 100/104", d.DataChannels(), d.TotalChannels())
	}
	d8 := Design800G()
	if d8.DataChannels() != 400 || d8.TotalChannels() != 416 {
		t.Errorf("800G channels = %d/%d", d8.DataChannels(), d8.TotalChannels())
	}
}

func TestEvaluatePrototype(t *testing.T) {
	// E5: the 100-channel prototype at 2 m must have every live channel
	// below 1e-12 pre-FEC (the paper demonstrated error-free operation).
	rep, err := DefaultDesign().Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Channels) != 104 {
		t.Fatalf("channels = %d", len(rep.Channels))
	}
	if rep.BelowTarget != 0 {
		t.Errorf("%d live channels above 1e-12 at 2 m", rep.BelowTarget)
	}
	if rep.MedianBER > 1e-13 {
		t.Errorf("median BER = %v", rep.MedianBER)
	}
	if rep.WorstMargin < 2 {
		t.Errorf("worst margin = %v dB", rep.WorstMargin)
	}
}

func TestEvaluateVariationSpreads(t *testing.T) {
	d := Design800G()
	d.LengthM = 40 // push toward the edge so variation is visible
	rep, err := d.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	// Channels must not all be identical.
	var distinct int
	seen := map[float64]bool{}
	for _, c := range rep.Channels {
		if !c.Dead && !seen[c.BER] {
			seen[c.BER] = true
			distinct++
		}
	}
	if distinct < 50 {
		t.Errorf("variation produced only %d distinct BERs", distinct)
	}
}

func TestEvaluateDeterministic(t *testing.T) {
	a, err := DefaultDesign().Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	b, _ := DefaultDesign().Evaluate()
	for i := range a.Channels {
		if a.Channels[i].BER != b.Channels[i].BER {
			t.Fatal("same seed produced different channel populations")
		}
	}
}

func TestMaxReachHeadline(t *testing.T) {
	// The abstract: "a reach of up to 50 m".
	d := DefaultDesign()
	reach := d.MaxReach(1e-12)
	if reach < 35 || reach > 120 {
		t.Errorf("reach = %.1f m, want ~50 m scale", reach)
	}
	// >25x the 112G copper reach.
	copper := channel.Twinax26AWG().MaxReach(channel.NyquistHz(106.25e9, channel.PAM4), 28)
	if reach < 25*copper {
		t.Errorf("reach %.1f m not >25x copper %.1f m", reach, copper)
	}
}

func TestNominalBERMonotoneInLength(t *testing.T) {
	d := DefaultDesign()
	prev := 0.0
	for _, l := range []float64{1, 10, 25, 50, 75, 100} {
		ber := d.NominalBERAt(l)
		if ber < prev {
			t.Fatalf("BER decreased at %v m", l)
		}
		prev = ber
	}
	if d.NominalBER() != d.NominalBERAt(d.LengthM) {
		t.Error("NominalBER inconsistent")
	}
}

func TestMisalignmentDegradesBER(t *testing.T) {
	aligned := DefaultDesign()
	aligned.LengthM = 45
	shifted := aligned
	shifted.LateralOffsetM = 15e-6
	if !(shifted.NominalBER() >= aligned.NominalBER()) {
		t.Error("misalignment should not improve BER")
	}
	// But 5 µm should be nearly free (the E6 tolerance claim).
	slight := aligned
	slight.LateralOffsetM = 5e-6
	if slight.NominalBER() > 1e-12 && aligned.NominalBER() < 1e-13 {
		t.Errorf("5um offset broke the channel: %v vs %v", slight.NominalBER(), aligned.NominalBER())
	}
}

func TestPowerBudgetCanonical(t *testing.T) {
	d := Design800G()
	b := d.PowerBudget()
	if b.Tech != power.Mosaic || b.RateBps != 800e9 {
		t.Fatalf("budget = %+v", b)
	}
	if b.TotalW() <= 0 {
		t.Error("zero power")
	}
}

func TestPowerBudgetNonCanonical(t *testing.T) {
	d := DefaultDesign()
	d.AggregateRate = 300e9 // not in the canonical table
	b := d.PowerBudget()
	if b.RateBps != 300e9 || b.TotalW() <= 0 {
		t.Fatalf("fallback budget = %+v", b)
	}
	if b.Component("gearbox") == 0 {
		t.Error("fallback budget missing gearbox")
	}
}

func TestReliabilityHeadline(t *testing.T) {
	d := Design800G()
	fit, survival := d.Reliability(5)
	if survival < 0.999 {
		t.Errorf("5-year survival = %v", survival)
	}
	if fit > 500 {
		t.Errorf("effective FIT = %v, should be far below a laser module", fit)
	}
}

func TestAvailability(t *testing.T) {
	d := Design800G()
	a, err := d.Availability(24)
	if err != nil {
		t.Fatal(err)
	}
	if a < 0.9999999 {
		t.Errorf("availability = %v", a)
	}
	if _, err := d.Availability(0); err == nil {
		t.Error("zero MTTR accepted")
	}
}

func TestBuildPHYRoundTrip(t *testing.T) {
	d := DefaultDesign()
	link, err := d.BuildPHY()
	if err != nil {
		t.Fatal(err)
	}
	if link.Mapper().NumLanes() != 100 {
		t.Fatalf("lanes = %d", link.Mapper().NumLanes())
	}
	rng := rand.New(rand.NewSource(3))
	frames := make([][]byte, 32)
	for i := range frames {
		frames[i] = make([]byte, 1500)
		rng.Read(frames[i])
	}
	got, st, err := link.Exchange(frames)
	if err != nil {
		t.Fatal(err)
	}
	if st.FramesDelivered != 32 {
		t.Fatalf("prototype dropped frames over 2 m: %+v", st)
	}
	for i := range got {
		if !bytes.Equal(got[i], frames[i]) {
			t.Fatal("frame corruption")
		}
	}
}

func TestBuildPHYKillsDeadChannels(t *testing.T) {
	d := DefaultDesign()
	d.Variation.DeadProb = 0.2 // force some dead channels
	rep, err := d.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if rep.DeadCount == 0 {
		t.Skip("no dead channels drawn; adjust seed")
	}
	link, err := d.BuildPHY()
	if err != nil {
		t.Fatal(err)
	}
	// Exchanging traffic must reveal the dead channels as unit loss.
	frames := [][]byte{make([]byte, 4000)}
	_, st, err := link.Exchange(frames)
	if err != nil {
		t.Fatal(err)
	}
	_ = st // dead lanes may or may not carry units for tiny exchanges
}

func TestBuildPHYInvalidDesign(t *testing.T) {
	d := DefaultDesign()
	d.AggregateRate = -1
	if _, err := d.BuildPHY(); err == nil {
		t.Error("invalid design accepted")
	}
	if _, err := d.Evaluate(); err == nil {
		t.Error("Evaluate accepted invalid design")
	}
}

func TestCompareTechnologies(t *testing.T) {
	rows, err := DefaultDesign().CompareTechnologies(800e9)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(power.AllTechs()) {
		t.Fatalf("rows = %d", len(rows))
	}
	byTech := map[power.Tech]TechSummary{}
	for _, r := range rows {
		byTech[r.Tech] = r
		if r.PowerW < 0 || r.PJPerBit < 0 || r.ReachM < 0 {
			t.Errorf("negative values in row %+v", r)
		}
	}
	// The trade-off table must show: copper short+cheap+reliable, optics
	// long+hot+fragile, Mosaic long-enough+cheap+reliable.
	dac, dr, mosaic := byTech[power.DAC], byTech[power.DR], byTech[power.Mosaic]
	if !(dac.ReachM < 5 && mosaic.ReachM > 25*dac.ReachM) {
		t.Errorf("reach story broken: dac %.1f mosaic %.1f", dac.ReachM, mosaic.ReachM)
	}
	if !(mosaic.PowerW < dr.PowerW*0.5) {
		t.Errorf("power story broken: mosaic %.1f dr %.1f", mosaic.PowerW, dr.PowerW)
	}
	if !(mosaic.LinkFIT < dr.LinkFIT/10) {
		t.Errorf("reliability story broken: mosaic %.0f dr %.0f", mosaic.LinkFIT, dr.LinkFIT)
	}
	if _, err := DefaultDesign().CompareTechnologies(5e9); err == nil {
		t.Error("bad rate accepted")
	}
}

func TestWithOptics(t *testing.T) {
	d := DefaultDesign()
	o := fiber.DefaultOptics()
	got, err := d.WithOptics(o, 0.40)
	if err != nil {
		t.Fatal(err)
	}
	// The default optics image the 4 µm LED onto the 40 µm spot the design
	// already assumed.
	if math.Abs(got.SpotDiameterM-40e-6) > 1e-9 {
		t.Errorf("spot = %v", got.SpotDiameterM)
	}
	// System extraction: 0.40 chip x ~1.85 dB optics ≈ 0.26 — the same
	// class as the folded-in 0.30, so reach survives.
	if got.LED.ExtractionEff < 0.2 || got.LED.ExtractionEff > 0.32 {
		t.Errorf("system extraction = %v", got.LED.ExtractionEff)
	}
	if reach := got.MaxReach(1e-12); reach < 40 {
		t.Errorf("explicit-optics reach = %v m, want still ~50 m class", reach)
	}
}

func TestWithOpticsDefocusCostsReach(t *testing.T) {
	d := DefaultDesign()
	focused, err := d.WithOptics(fiber.DefaultOptics(), 0.40)
	if err != nil {
		t.Fatal(err)
	}
	blurryOptics := fiber.DefaultOptics()
	blurryOptics.DefocusM = 200e-6 // blur ~20 µm: spot ~44.7 µm, still under the 50 µm pitch
	blurred, err := d.WithOptics(blurryOptics, 0.40)
	if err != nil {
		t.Fatal(err)
	}
	if !(blurred.SpotDiameterM > focused.SpotDiameterM) {
		t.Error("defocus should grow the spot")
	}
	// A bigger spot couples into more cores but leaks into neighbours; at
	// fixed pitch the reach must not improve.
	if blurred.MaxReach(1e-12) > focused.MaxReach(1e-12)+1 {
		t.Error("defocus should not improve reach")
	}
}

func TestWithOpticsValidation(t *testing.T) {
	d := DefaultDesign()
	bad := fiber.DefaultOptics()
	bad.Magnification = 0
	if _, err := d.WithOptics(bad, 0.4); err == nil {
		t.Error("invalid optics accepted")
	}
	if _, err := d.WithOptics(fiber.DefaultOptics(), 0); err == nil {
		t.Error("zero chip extraction accepted")
	}
	if _, err := d.WithOptics(fiber.DefaultOptics(), 1.5); err == nil {
		t.Error("extraction above 1 accepted")
	}
	// A spot bigger than the channel pitch must be rejected downstream.
	huge := fiber.DefaultOptics()
	huge.Magnification = 20
	if _, err := d.WithOptics(huge, 0.4); err == nil {
		t.Error("80um spot on a 50um pitch accepted")
	}
}

func TestCombineDB(t *testing.T) {
	// Two equal levels add 3 dB.
	if got := combineDB(-40, -40); math.Abs(got-(-36.99)) > 0.02 {
		t.Errorf("combineDB(-40,-40) = %v", got)
	}
	// -Inf is transparent.
	if got := combineDB(-40, math.Inf(-1)); math.Abs(got-(-40)) > 1e-9 {
		t.Errorf("combineDB with -Inf = %v", got)
	}
	if !math.IsInf(combineDB(math.Inf(-1), math.Inf(-1)), -1) {
		t.Error("both -Inf should stay -Inf")
	}
}

func TestBuildPHYUsesConfiguredFEC(t *testing.T) {
	d := DefaultDesign()
	d.FEC = phy.HammingFEC{}
	link, err := d.BuildPHY()
	if err != nil {
		t.Fatal(err)
	}
	if link.Config().FEC.Name() != "hamming72" {
		t.Errorf("FEC = %s", link.Config().FEC.Name())
	}
}
