package core

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mosaic/internal/channel"
	"mosaic/internal/phy"
)

func TestConfigRoundTrip(t *testing.T) {
	d := Design800G()
	d.FEC = phy.HammingFEC{}
	d.Modulation = channel.PAM4
	d.LateralOffsetM = 5e-6
	var buf bytes.Buffer
	if err := WriteDesign(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDesign(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.AggregateRate != d.AggregateRate || got.Spares != d.Spares ||
		got.LengthM != d.LengthM || got.Modulation != d.Modulation {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if got.FEC.Name() != "hamming72" {
		t.Errorf("FEC = %s", got.FEC.Name())
	}
	if diff := got.LateralOffsetM - d.LateralOffsetM; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("offset = %v", got.LateralOffsetM)
	}
}

func TestConfigDefaultsApply(t *testing.T) {
	d, err := ReadDesign(strings.NewReader(`{"lengthM": 25}`))
	if err != nil {
		t.Fatal(err)
	}
	base := DefaultDesign()
	if d.LengthM != 25 {
		t.Errorf("lengthM = %v", d.LengthM)
	}
	if d.AggregateRate != base.AggregateRate || d.Spares != base.Spares {
		t.Error("unset fields did not inherit defaults")
	}
	if d.FEC.Name() != base.FEC.Name() {
		t.Error("default FEC not preserved")
	}
}

func TestConfigZeroSpares(t *testing.T) {
	// The pointer type must distinguish "spares: 0" from "unset".
	d, err := ReadDesign(strings.NewReader(`{"spares": 0}`))
	if err != nil {
		t.Fatal(err)
	}
	if d.Spares != 0 {
		t.Errorf("spares = %d, want explicit 0", d.Spares)
	}
}

func TestConfigRejects(t *testing.T) {
	cases := []string{
		`{"modulation": "qam256"}`,
		`{"fec": "turbo"}`,
		`{"lengthM": -5}`,
		`{"unknownField": 1}`,
		`not json`,
	}
	for _, c := range cases {
		if _, err := ReadDesign(strings.NewReader(c)); err == nil {
			t.Errorf("accepted %q", c)
		}
	}
}

func TestConfigPAM4AndKP4Names(t *testing.T) {
	d, err := ReadDesign(strings.NewReader(`{"modulation": "pam4", "fec": "kp4"}`))
	if err != nil {
		t.Fatal(err)
	}
	cfg := FromDesign(d)
	if cfg.Modulation != "pam4" || cfg.FEC != "kp4" {
		t.Errorf("captured config = %+v", cfg)
	}
	none, _ := ReadDesign(strings.NewReader(`{"fec": "none"}`))
	if FromDesign(none).FEC != "none" {
		t.Error("none FEC not captured")
	}
}

func TestLoadDesignFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "design.json")
	if err := os.WriteFile(path, []byte(`{"lengthM": 12, "seed": 9}`), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := LoadDesign(path)
	if err != nil {
		t.Fatal(err)
	}
	if d.LengthM != 12 || d.Seed != 9 {
		t.Errorf("loaded %+v", d)
	}
	if _, err := LoadDesign(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}
