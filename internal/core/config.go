package core

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"mosaic/internal/channel"
	"mosaic/internal/phy"
)

// DesignConfig is the JSON-serialisable form of a Design. Device models
// keep their defaults unless overridden; the FEC is named (see
// phy.FECByName). Zero-valued fields inherit from DefaultDesign, so a
// config file only needs the fields it changes:
//
//	{"aggregateRateGbps": 800, "lengthM": 30, "spares": 16, "fec": "rslite"}
type DesignConfig struct {
	AggregateRateGbps float64 `json:"aggregateRateGbps,omitempty"`
	ChannelRateGbps   float64 `json:"channelRateGbps,omitempty"`
	Spares            *int    `json:"spares,omitempty"`
	LengthM           float64 `json:"lengthM,omitempty"`
	LateralOffsetUm   float64 `json:"lateralOffsetUm,omitempty"`
	SpotDiameterUm    float64 `json:"spotDiameterUm,omitempty"`
	ChannelPitchUm    float64 `json:"channelPitchUm,omitempty"`
	ExtinctionRatioDB float64 `json:"extinctionRatioDB,omitempty"`
	Modulation        string  `json:"modulation,omitempty"` // "nrz" | "pam4"
	FEC               string  `json:"fec,omitempty"`        // none|hamming72|rslite|kp4
	Seed              int64   `json:"seed,omitempty"`
}

// ToDesign materialises the config over DefaultDesign.
func (c DesignConfig) ToDesign() (Design, error) {
	d := DefaultDesign()
	if c.AggregateRateGbps != 0 {
		d.AggregateRate = c.AggregateRateGbps * 1e9
	}
	if c.ChannelRateGbps != 0 {
		d.ChannelRate = c.ChannelRateGbps * 1e9
	}
	if c.Spares != nil {
		d.Spares = *c.Spares
	}
	if c.LengthM != 0 {
		d.LengthM = c.LengthM
	}
	if c.LateralOffsetUm != 0 {
		d.LateralOffsetM = c.LateralOffsetUm * 1e-6
	}
	if c.SpotDiameterUm != 0 {
		d.SpotDiameterM = c.SpotDiameterUm * 1e-6
	}
	if c.ChannelPitchUm != 0 {
		d.ChannelPitchM = c.ChannelPitchUm * 1e-6
	}
	if c.ExtinctionRatioDB != 0 {
		d.ExtinctionRatioDB = c.ExtinctionRatioDB
	}
	switch c.Modulation {
	case "", "nrz", "NRZ":
		d.Modulation = channel.NRZ
	case "pam4", "PAM4":
		d.Modulation = channel.PAM4
	default:
		return Design{}, fmt.Errorf("core: unknown modulation %q", c.Modulation)
	}
	if c.FEC != "" {
		fec, err := phy.FECByName(c.FEC)
		if err != nil {
			return Design{}, err
		}
		d.FEC = fec
	}
	if c.Seed != 0 {
		d.Seed = c.Seed
	}
	if err := d.Validate(); err != nil {
		return Design{}, err
	}
	return d, nil
}

// FromDesign captures a Design back into its config form.
func FromDesign(d Design) DesignConfig {
	spares := d.Spares
	mod := "nrz"
	if d.Modulation == channel.PAM4 {
		mod = "pam4"
	}
	fecName := "rslite"
	switch d.FEC.(type) {
	case phy.NoFEC:
		fecName = "none"
	case phy.HammingFEC:
		fecName = "hamming72"
	default:
		if d.FEC != nil && d.FEC.Name() == "RS(544,514)/GF(2^10)" {
			fecName = "kp4"
		}
	}
	return DesignConfig{
		AggregateRateGbps: d.AggregateRate / 1e9,
		ChannelRateGbps:   d.ChannelRate / 1e9,
		Spares:            &spares,
		LengthM:           d.LengthM,
		LateralOffsetUm:   d.LateralOffsetM * 1e6,
		SpotDiameterUm:    d.SpotDiameterM * 1e6,
		ChannelPitchUm:    d.ChannelPitchM * 1e6,
		ExtinctionRatioDB: d.ExtinctionRatioDB,
		Modulation:        mod,
		FEC:               fecName,
		Seed:              d.Seed,
	}
}

// ReadDesign parses a JSON design config from r.
func ReadDesign(r io.Reader) (Design, error) {
	var cfg DesignConfig
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return Design{}, fmt.Errorf("core: parsing design config: %w", err)
	}
	return cfg.ToDesign()
}

// LoadDesign reads a JSON design config from a file.
func LoadDesign(path string) (Design, error) {
	f, err := os.Open(path)
	if err != nil {
		return Design{}, err
	}
	defer f.Close()
	return ReadDesign(f)
}

// WriteDesign serialises a design's config as indented JSON to w.
func WriteDesign(w io.Writer, d Design) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(FromDesign(d))
}
