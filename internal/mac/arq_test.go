package mac

import (
	"fmt"
	"testing"
)

func srCfg() Config {
	return Config{Window: 8, RetxTimeout: 2, MaxPayload: 64,
		PayloadBudget: 2048, ARQ: ARQSelectiveRepeat}
}

// Selective repeat on a clean loopback must deliver everything in order
// with no retransmissions, exactly like go-back-N.
func TestSRInOrderDelivery(t *testing.T) {
	var got []string
	lb := newLoopbackDeliver(t, srCfg(), nil, func(p []byte) {
		got = append(got, string(p))
	})
	for i := 0; i < 30; i++ {
		if err := lb.a.Send([]byte(fmt.Sprintf("packet-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 12; i++ {
		lb.tick(false, false)
	}
	if len(got) != 30 {
		t.Fatalf("delivered %d packets, want 30; a=%+v b=%+v", len(got), lb.a.Stats(), lb.b.Stats())
	}
	for i, p := range got {
		if want := fmt.Sprintf("packet-%03d", i); p != want {
			t.Fatalf("packet %d = %q, want %q", i, p, want)
		}
	}
	if s := lb.a.Stats(); s.Retransmits != 0 || s.InFlight != 0 {
		t.Fatalf("clean link retransmitted or left frames in flight: %+v", s)
	}
}

// Under loss, SR must recover by replaying only the dead slots — the
// survivors wait in the reorder buffer instead of being discarded, so
// the receiver records Reordered, never Discarded.
func TestSRRecoversWithoutDiscard(t *testing.T) {
	var got []string
	lb := newLoopbackDeliver(t, srCfg(), nil, func(p []byte) {
		got = append(got, string(p))
	})
	sent := 0
	drops := map[int]bool{2: true, 3: true, 7: true}
	for i := 0; i < 40; i++ {
		if sent < 24 && i%2 == 0 {
			for k := 0; k < 3; k++ {
				if err := lb.a.Send([]byte(fmt.Sprintf("p%03d", sent))); err != nil {
					t.Fatal(err)
				}
				sent++
			}
		}
		lb.tick(drops[i], false)
	}
	if len(got) != sent {
		t.Fatalf("delivered %d, want %d; a=%+v b=%+v", len(got), sent, lb.a.Stats(), lb.b.Stats())
	}
	for i, p := range got {
		if want := fmt.Sprintf("p%03d", i); p != want {
			t.Fatalf("slot %d = %q, want %q", i, p, want)
		}
	}
	if s := lb.a.Stats(); s.Retransmits == 0 || s.Timeouts == 0 {
		t.Fatalf("loss produced no retransmissions: %+v", s)
	}
	if s := lb.b.Stats(); s.Discarded != 0 {
		t.Fatalf("SR receiver discarded %d frames it had reorder room for: %+v", s.Discarded, s)
	}
	if s := lb.b.Stats(); s.SacksRx == 0 && lb.a.Stats().SacksRx == 0 {
		t.Fatalf("no sack bitmaps exchanged under loss: a=%+v b=%+v", lb.a.Stats(), lb.b.Stats())
	}
}

// A duplicate retransmission arriving after a late ack — once while the
// original waits in the reorder buffer, once after delivery — must count
// as a duplicate both times and deliver exactly once.
func TestSRDuplicateRetransmits(t *testing.T) {
	delivered := 0
	b, err := NewEndpoint(srCfg(), func([]byte) { delivered++ })
	if err != nil {
		t.Fatal(err)
	}
	data := func(seq uint16) []byte {
		return AppendFrameVC(nil, FlagData, 0, seq, 0, []byte(fmt.Sprintf("s%d", seq)))
	}
	// Seq 0 lost: 1 and 2 park in the reorder buffer.
	b.Accept([][]byte{data(1)})
	b.Accept([][]byte{data(2)})
	if s := b.Stats(); s.Reordered != 2 || s.ReorderDepth != 2 || delivered != 0 {
		t.Fatalf("parked state wrong: delivered=%d %+v", delivered, s)
	}
	// The sender's timer fires before our sack arrives: seq 1 comes again
	// while the original still waits in the buffer.
	b.Accept([][]byte{data(1)})
	if s := b.Stats(); s.Duplicates != 1 || s.ReorderDepth != 2 {
		t.Fatalf("in-buffer duplicate not suppressed: %+v", s)
	}
	// The gap fills: 0,1,2 deliver in order and the buffer drains.
	b.Accept([][]byte{data(0)})
	if s := b.Stats(); delivered != 3 || s.ReorderDepth != 0 {
		t.Fatalf("drain failed: delivered=%d %+v", delivered, s)
	}
	// A straggler retransmission of an already-delivered seq re-acks but
	// does not re-deliver.
	b.Accept([][]byte{data(1)})
	if s := b.Stats(); delivered != 3 || s.Duplicates != 2 {
		t.Fatalf("post-delivery duplicate not suppressed: delivered=%d %+v", delivered, s)
	}
	// Its ack must still go out so the sender can release the slot.
	sf := b.BuildSuperframe()
	var d Deframer
	sawAck := false
	d.Deframe(sf, func(f Frame) {
		if f.Flags&FlagAck != 0 && f.Ack == 3 {
			sawAck = true
		}
	})
	if !sawAck {
		t.Fatal("no ack after duplicate retransmission")
	}
}

// Frames beyond the reorder window must be discarded (bounded memory),
// not parked.
func TestSRReorderWindowBound(t *testing.T) {
	cfg := srCfg()
	cfg.ReorderWindow = 4
	b, err := NewEndpoint(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint16(1); seq <= 6; seq++ {
		b.Accept([][]byte{AppendFrameVC(nil, FlagData, 0, seq, 0, []byte("x"))})
	}
	s := b.Stats()
	// Seqs 1..3 fit (distances 1..3 within a 4-deep ring ahead of
	// expected 0); 4..6 are over the horizon.
	if s.Reordered != 3 || s.Discarded != 3 || s.ReorderDepth != 3 {
		t.Fatalf("bounded reorder buffer misbehaved: %+v", s)
	}
}

// Sequence numbers must survive u16 wraparound while the reorder ring is
// in active use: a small ring, periodic superframe loss, and enough
// packets to wrap the sequence space twice. Everything still arrives
// exactly once, in order.
func TestSRSequenceWraparoundAcrossReorderBoundary(t *testing.T) {
	// Budget barely above one window of data, so a truncated superframe
	// cuts real frames: the surviving prefix acks, the next tick's fresh
	// frames open a gap, and the reorder ring buffers across it.
	cfg := Config{Window: 32, RetxTimeout: 2, MaxPayload: 8,
		PayloadBudget: 33 * (8 + OverheadV2), ARQ: ARQSelectiveRepeat, ReorderWindow: 24}
	delivered := uint64(0)
	next := 0
	lb := newLoopbackDeliver(t, cfg, nil, func(p []byte) {
		if want := fmt.Sprintf("%08d", next); string(p) != want {
			t.Fatalf("delivery %d = %q, want %q", delivered, p, want)
		}
		next++
		delivered++
	})
	const total = 140000 // > 2 * 65536
	sent, tick := 0, 0
	for sent < total || lb.a.Stats().InFlight > 0 || lb.a.Stats().QueueDepth > 0 {
		for k := 0; k < 40 && sent < total; k++ {
			if err := lb.a.Send([]byte(fmt.Sprintf("%08d", sent))); err != nil {
				t.Fatal(err)
			}
			sent++
		}
		sfA := lb.a.BuildSuperframe()
		if tick%13 == 5 {
			sfA = sfA[:len(sfA)/2] // a lost PHY frame splices the stream mid-superframe
		}
		lb.b.Accept([][]byte{sfA})
		lb.a.Accept([][]byte{lb.b.BuildSuperframe()})
		tick++
		if tick > 100*total/40 {
			t.Fatalf("no progress: sent=%d a=%+v b=%+v", sent, lb.a.Stats(), lb.b.Stats())
		}
	}
	if delivered != total {
		t.Fatalf("delivered %d, want %d", delivered, total)
	}
	if s := lb.a.Stats(); s.Retransmits == 0 {
		t.Fatalf("lossy wraparound run never retransmitted: %+v", s)
	}
	if s := lb.b.Stats(); s.Reordered == 0 {
		t.Fatalf("reorder ring never used across the wraparound run: %+v", s)
	}
}

// With every virtual channel backlogged and a budget of exactly one WRR
// cycle per superframe, the weighted scheduler must serve classes 0/1/2
// in a strict 4:2:1 ratio — and the class-2 channel must drain, not
// starve, once the higher classes empty.
func TestSRWeightedSchedulingAndStarvationDrain(t *testing.T) {
	cfg := Config{
		Window: 64, RetxTimeout: 2, MaxPayload: 16,
		ARQ: ARQSelectiveRepeat, VCs: 3, VCClass: []uint8{0, 1, 2},
	}
	// Exactly one full WRR cycle (4+2+1 frames) of fresh data per tick.
	cfg.PayloadBudget = 7 * (cfg.MaxPayload + OverheadV2)
	perVC := make([]int, 3)
	lb := &loopback{}
	var err error
	if lb.a, err = NewEndpoint(cfg, nil); err != nil {
		t.Fatal(err)
	}
	if lb.b, err = NewEndpointVC(cfg, func(vc int, _ []byte) { perVC[vc]++ }); err != nil {
		t.Fatal(err)
	}
	load := [3]int{100, 60, 40}
	payload := make([]byte, 16)
	for vc, n := range load {
		for k := 0; k < n; k++ {
			if err := lb.a.SendVC(vc, payload); err != nil {
				t.Fatal(err)
			}
		}
	}
	// 10 ticks with all queues backlogged: exact weighted shares.
	for i := 0; i < 10; i++ {
		lb.tick(false, false)
	}
	if perVC[0] != 40 || perVC[1] != 20 || perVC[2] != 10 {
		t.Fatalf("backlogged shares = %v, want [40 20 10] (4:2:1)", perVC)
	}
	// Keep class 0 saturated while the low classes try to finish: the
	// WRR guarantees forward progress for class 2 regardless.
	for i := 0; i < 60; i++ {
		for k := 0; k < 4; k++ {
			if err := lb.a.SendVC(0, payload); err != nil {
				t.Fatal(err)
			}
		}
		lb.tick(false, false)
	}
	if perVC[2] != load[2] {
		t.Fatalf("class-2 VC starved: delivered %d/%d (all=%v)", perVC[2], load[2], perVC)
	}
	if perVC[1] != load[1] {
		t.Fatalf("class-1 VC starved: delivered %d/%d (all=%v)", perVC[1], load[1], perVC)
	}
	if v := lb.b.VCSnapshot(2); v.Class != 2 || v.Delivered != uint64(load[2]) {
		t.Fatalf("VC snapshot wrong: %+v", v)
	}
}

// Validate must accept the documented bounds exactly and reject one step
// beyond them: windows at the int16-wraparound ceiling, the one-byte VC
// field, class range, and the sack-capable payload floor.
func TestConfigValidateBounds(t *testing.T) {
	base := func() Config {
		return Config{Window: 1 << 14, RetxTimeout: 1, MaxPayload: 64,
			PayloadBudget: 1 << 20, ARQ: ARQGoBackN, VCs: 1,
			VCClass: []uint8{0}, ReorderWindow: 1 << 14}
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("config at the documented bounds rejected: %v", err)
	}

	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"window over int16 bound", func(c *Config) { c.Window = 1<<14 + 1 }},
		{"window zero", func(c *Config) { c.Window = 0 }},
		{"reorder over int16 bound", func(c *Config) { c.ReorderWindow = 1<<14 + 1 }},
		{"reorder zero", func(c *Config) { c.ReorderWindow = 0 }},
		{"vc count zero", func(c *Config) { c.VCs = 0; c.VCClass = nil }},
		{"vc count over header byte", func(c *Config) {
			c.VCs = MaxVCs + 1
			c.VCClass = make([]uint8, MaxVCs+1)
		}},
		{"class list length mismatch", func(c *Config) { c.VCClass = []uint8{0, 1} }},
		{"class out of range", func(c *Config) { c.VCClass = []uint8{NumClasses} }},
		{"unknown arq", func(c *Config) { c.ARQ = "stop-and-wait" }},
		{"payload over u16 length field", func(c *Config) { c.MaxPayload = 1 << 16 }},
		{"sr payload below sack bitmap", func(c *Config) {
			c.ARQ = ARQSelectiveRepeat
			c.MaxPayload = SackBytes - 1
		}},
		{"budget below one frame", func(c *Config) { c.PayloadBudget = c.MaxPayload + Overhead - 1 }},
	}
	for _, tc := range cases {
		c := base()
		tc.mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: invalid config accepted: %+v", tc.name, c)
		}
	}

	// The full 256-VC header capacity must construct, and cumulative-ack
	// arithmetic at the maximal window must round-trip a wraparound
	// distance without misreading it as implausible.
	big := base()
	big.VCs = MaxVCs
	big.VCClass = make([]uint8, MaxVCs)
	if _, err := NewEndpoint(big, nil); err != nil {
		t.Fatalf("256-VC endpoint rejected: %v", err)
	}
	ack, seqBase := uint16(3), uint16(65530)
	if d := int(int16(ack - seqBase)); d != 9 {
		t.Fatalf("int16 wraparound distance = %d, want 9", d)
	}
}
