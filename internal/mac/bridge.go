package mac

import (
	"mosaic/internal/phy"
	"mosaic/internal/sim"
)

// CapacitySink is where the bridge publishes renegotiated capacity.
// netsim.FlowSim satisfies it; the indirection keeps the MAC layer
// protocol-agnostic — it signals width changes without knowing what
// consumes them.
type CapacitySink interface {
	SetLinkCapacityFraction(linkID int, frac float64)
}

// VCCapacitySink receives the per-virtual-channel breakdown of a
// renegotiation: each VC's share of the degraded link, split by QoS
// class weight (the same weights the MAC scheduler uses, so the network
// layer's view of priority matches what the wire actually does).
// netsim.VCLinkMap satisfies it.
type VCCapacitySink interface {
	SetVCCapacityFraction(linkID, vc int, frac float64)
}

// Bridge is the capacity-renegotiation half of the MAC: it watches a
// PHY link's health monitor and republishes the link's usable width
// into a flow simulator whenever sparing consumes lanes. This replaces
// hand-wired SetLinkCapacityFraction calls — the network layer learns
// about degradation the same way a real switch would, from the link's
// own adaptation machinery.
//
// Timing: the monitor fires its transition hook *before* the mapper
// remaps (FailChannel marks, then remaps), so the hook must not read
// the lane count synchronously. Notify instead schedules a zero-delay
// sync on the event engine; the engine's FIFO tie-break runs it after
// the current callback — and the remap — completes. Multiple failures
// in one instant coalesce into a single renegotiation.
type Bridge struct {
	link   *phy.Link
	sink   CapacitySink
	linkID int
	eng    *sim.Engine

	nominal  int // lane count at install time; the 1.0 reference
	lastFrac float64
	pending  bool

	renegotiations uint64

	// VCSink, when non-nil, additionally receives each VC's weighted
	// share of every renegotiated fraction (set alongside VCClasses
	// before Install).
	VCSink VCCapacitySink
	// VCClasses assigns the QoS class per VC for the VCSink split; nil
	// with a non-nil VCSink means one class-0 VC.
	VCClasses []uint8

	// OnRenegotiate, when non-nil, observes each published change (for
	// event logs and telemetry). Called after the sink is updated.
	OnRenegotiate func(at sim.Time, lanes int, frac float64)

	prevHook func(physical int, from, to phy.ChannelState)
}

// NewBridge wires a bridge between link and sink for the given flow-sim
// link ID. Call Install to start observing monitor transitions.
func NewBridge(link *phy.Link, sink CapacitySink, linkID int, eng *sim.Engine) *Bridge {
	return &Bridge{
		link:     link,
		sink:     sink,
		linkID:   linkID,
		eng:      eng,
		nominal:  link.Mapper().NumLanes(),
		lastFrac: 1,
	}
}

// Install subscribes the bridge to the link's monitor. The monitor has
// a single hook slot, so any previously installed hook is chained:
// it still runs, first, on every transition.
func (b *Bridge) Install() {
	b.prevHook = b.link.Monitor().TransitionHook()
	b.link.Monitor().SetTransitionHook(func(physical int, from, to phy.ChannelState) {
		if b.prevHook != nil {
			b.prevHook(physical, from, to)
		}
		if to == phy.Failed {
			b.Notify()
		}
	})
}

// Notify schedules a capacity sync at the current simulated time (after
// the in-flight event completes). Safe to call redundantly; pending
// notifications coalesce.
func (b *Bridge) Notify() {
	if b.pending {
		return
	}
	b.pending = true
	b.eng.After(0, b.sync)
}

func (b *Bridge) sync() {
	b.pending = false
	lanes := b.link.Mapper().NumLanes()
	frac := float64(lanes) / float64(b.nominal)
	if frac == b.lastFrac {
		return // spares absorbed the failure; width unchanged
	}
	b.lastFrac = frac
	b.renegotiations++
	b.sink.SetLinkCapacityFraction(b.linkID, frac)
	b.publishVCs(frac)
	if b.OnRenegotiate != nil {
		b.OnRenegotiate(b.eng.Now(), lanes, frac)
	}
}

// publishVCs splits a renegotiated link fraction across the virtual
// channels in proportion to their QoS class weights — the share each VC
// would win from the MAC's weighted scheduler under full load.
func (b *Bridge) publishVCs(frac float64) {
	if b.VCSink == nil {
		return
	}
	classes := b.VCClasses
	if len(classes) == 0 {
		classes = []uint8{0}
	}
	total := 0
	for _, class := range classes {
		total += ClassWeight(class)
	}
	if total == 0 {
		return
	}
	for vc, class := range classes {
		b.VCSink.SetVCCapacityFraction(b.linkID, vc, frac*float64(ClassWeight(class))/float64(total))
	}
}

// Fraction returns the capacity fraction last published (1.0 until the
// first renegotiation).
func (b *Bridge) Fraction() float64 { return b.lastFrac }

// Renegotiations returns how many capacity changes have been published.
func (b *Bridge) Renegotiations() uint64 { return b.renegotiations }
