package mac

import (
	"fmt"
	"testing"

	"mosaic/internal/phy"
)

func testLink(t *testing.T, seed int64, workers int) *phy.Link {
	t.Helper()
	link, err := phy.New(phy.Config{
		Lanes:             12,
		Spares:            2,
		FEC:               phy.NewRSLite(),
		UnitLen:           63,
		PerChannelBitRate: 2e9,
		Seed:              seed,
		Workers:           workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	return link
}

// Over a clean PHY, every packet crosses the real pipeline (encode,
// stripe, destripe, parse) and arrives exactly once, in order.
func TestPairDeliversOverPHY(t *testing.T) {
	fwd := testLink(t, 3, 0)
	rev := testLink(t, 4, 0)
	var got []string
	pair, err := NewPair(fwd, rev, PairConfig{
		PHYFrameLen: 120,
		Endpoint:    Config{Window: 16, MaxPayload: 200, PayloadBudget: 3000},
	}, nil, func(p []byte) { got = append(got, string(p)) })
	if err != nil {
		t.Fatal(err)
	}
	sent := 0
	for tick := 0; tick < 20; tick++ {
		for k := 0; k < 4 && sent < 50; k++ {
			if err := pair.A.Send([]byte(fmt.Sprintf("pkt-%03d", sent))); err != nil {
				t.Fatal(err)
			}
			sent++
		}
		if err := pair.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != sent {
		t.Fatalf("delivered %d/%d; b=%+v", len(got), sent, pair.B.Stats())
	}
	for i, p := range got {
		if want := fmt.Sprintf("pkt-%03d", i); p != want {
			t.Fatalf("slot %d = %q, want %q", i, p, want)
		}
	}
}

// With a channel forced to a brutal BER, PHY frames die, MAC frames
// splice, and the LLR must still deliver everything in order.
func TestPairRecoversOverLossyPHY(t *testing.T) {
	fwd := testLink(t, 5, 0)
	rev := testLink(t, 6, 0)
	fwd.SetChannelBER(3, 4e-3) // ~2 symbol errors per RS-lite block: units fail probabilistically
	var got []string
	pair, err := NewPair(fwd, rev, PairConfig{
		PHYFrameLen: 120,
		Endpoint:    Config{Window: 32, RetxTimeout: 2, MaxPayload: 200, PayloadBudget: 3000},
	}, nil, func(p []byte) { got = append(got, string(p)) })
	if err != nil {
		t.Fatal(err)
	}
	// Packets near MaxPayload so the data region spans the whole budget
	// (striping is deterministic: a superframe that is mostly idle fill
	// would place every data byte on the same healthy lanes every tick).
	mkpkt := func(i int) []byte {
		p := make([]byte, 200)
		copy(p, fmt.Sprintf("pkt-%03d", i))
		return p
	}
	sent := 0
	for tick := 0; tick < 120; tick++ {
		for k := 0; k < 6 && sent < 60; k++ {
			if err := pair.A.Send(mkpkt(sent)); err != nil {
				t.Fatal(err)
			}
			sent++
		}
		if err := pair.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != sent {
		t.Fatalf("delivered %d/%d; a=%+v b=%+v", len(got), sent, pair.A.Stats(), pair.B.Stats())
	}
	for i, p := range got {
		if want := fmt.Sprintf("pkt-%03d", i); p[:len(want)] != want {
			t.Fatalf("slot %d = %q, want prefix %q", i, p[:8], want)
		}
	}
	if pair.A.Stats().Retransmits == 0 {
		t.Fatalf("lossy run never retransmitted: %+v", pair.A.Stats())
	}
}

// The budget must round up to whole PHY frames so no chunk is below the
// PHY's 3-byte minimum.
func TestPairRoundsBudgetToPHYFrames(t *testing.T) {
	fwd := testLink(t, 7, 0)
	rev := testLink(t, 8, 0)
	pair, err := NewPair(fwd, rev, PairConfig{
		PHYFrameLen: 100,
		Endpoint:    Config{MaxPayload: 64, PayloadBudget: 250},
	}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(pair.A.BuildSuperframe()); got != 300 {
		t.Fatalf("budget = %d, want 300 (rounded to PHY frames)", got)
	}
}
