package mac

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime"
	"strings"
	"testing"

	"mosaic/internal/faultinject"
	"mosaic/internal/sim"
	"mosaic/internal/telemetry"
)

// The MAC session must be deterministic the same way the PHY pipeline
// and the soak harness are: a fixed pair of link seeds, traffic seed,
// and fault schedule produce a byte-identical event log and summary at
// any worker count. The golden hash pins a scenario that exercises
// injection, aging-driven retransmission, reactive sparing, spare
// exhaustion, and bridge renegotiations.

// goldenSessionSHA is sha256[:8] of the scenario's joined log + summary.
const goldenSessionSHA = "d02225b7ded5020b"

// runGoldenSession executes the pinned scenario. reg may be nil; the
// golden hash must not depend on it (telemetry is write-only).
func runGoldenSession(t *testing.T, workers int, reg *telemetry.Registry) (string, *Result, *recordingSink) {
	t.Helper()
	fwd := testLink(t, 11, workers)
	rev := testLink(t, 12, workers)
	eng := sim.NewEngine(1)
	sink := &recordingSink{}
	bridge := NewBridge(fwd, sink, 3, eng)
	sess, err := NewSession(SessionConfig{
		Engine: eng,
		Fwd:    fwd,
		Rev:    rev,
		Pair:   PairConfig{PHYFrameLen: 120},
		Schedule: faultinject.Schedule{Events: []faultinject.Event{
			{At: 5, Kind: faultinject.KindKill, Channel: 2},
			{At: 10, Kind: faultinject.KindAging, Channel: 6, BER: 4e-3, Duration: 8},
			{At: 22, Kind: faultinject.KindBurst, Channel: 9, BER: 5e-3, Duration: 4},
			{At: 30, Kind: faultinject.KindCorrelated, Channel: 3, Span: 2},
		}},
		Superframes:  45,
		Interval:     1e-5,
		PacketsPerSF: 4,
		PacketLen:    150,
		Seed:         21,
		Bridge:       bridge,
		Metrics:      reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	res := sess.Result()
	blob := strings.Join(res.Log, "\n") + "\n" + res.Summary()
	h := sha256.Sum256([]byte(blob))
	return hex.EncodeToString(h[:8]), res, sink
}

func TestSessionDeterminismAcrossWorkerCounts(t *testing.T) {
	for _, w := range []int{1, 2, 3, 4, runtime.NumCPU(), 0} {
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			sha, res, sink := runGoldenSession(t, w, nil)
			if sha != goldenSessionSHA {
				t.Errorf("event log hash = %s, want %s; log:\n%s\n%s",
					sha, goldenSessionSHA, strings.Join(res.Log, "\n"), res.Summary())
			}
			// The hash pins everything; spot-check the shape so a drift
			// failure reports something human-readable.
			if res.Err != "" {
				t.Errorf("session error: %s", res.Err)
			}
			if res.B.Delivered != res.A.PacketsQueued {
				t.Errorf("delivered %d of %d queued", res.B.Delivered, res.A.PacketsQueued)
			}
			if res.A.Retransmits == 0 {
				t.Errorf("aging scenario produced no retransmissions: %+v", res.A)
			}
			if res.Renegotiations == 0 || len(sink.calls) == 0 {
				t.Errorf("spare exhaustion never renegotiated (%d, %d sink calls)",
					res.Renegotiations, len(sink.calls))
			}
		})
	}
}

// Two identical runs on fresh state must agree byte for byte — no
// hidden globals.
func TestSessionRerunIdentical(t *testing.T) {
	a, _, _ := runGoldenSession(t, 4, nil)
	b, _, _ := runGoldenSession(t, 4, nil)
	if a != b {
		t.Fatalf("re-run diverged: %s vs %s", a, b)
	}
}

// Telemetry must be write-only: attaching a registry cannot change the
// event log, and the registry must reflect what the log says happened.
func TestSessionTelemetryPreservesLog(t *testing.T) {
	reg := telemetry.NewRegistry()
	sha, res, _ := runGoldenSession(t, 2, reg)
	if sha != goldenSessionSHA {
		t.Fatalf("telemetry changed the event log: %s, want %s", sha, goldenSessionSHA)
	}
	if got := reg.Counter("mosaic_mac_retransmits_total", "endpoint", "a").Value(); got != res.A.Retransmits {
		t.Errorf("retransmit counter = %d, want %d", got, res.A.Retransmits)
	}
	if got := reg.Counter("mosaic_mac_delivered_total", "endpoint", "b").Value(); got != res.B.Delivered {
		t.Errorf("delivered counter = %d, want %d", got, res.B.Delivered)
	}
	if got := reg.Counter("mosaic_mac_renegotiations_total").Value(); got != res.Renegotiations {
		t.Errorf("renegotiation counter = %d, want %d", got, res.Renegotiations)
	}
}
