package mac

import (
	"testing"

	"mosaic/internal/phy"
	"mosaic/internal/sim"
)

// recordingSink captures every capacity publication.
type recordingSink struct {
	calls []struct {
		link int
		frac float64
	}
}

func (r *recordingSink) SetLinkCapacityFraction(link int, frac float64) {
	r.calls = append(r.calls, struct {
		link int
		frac float64
	}{link, frac})
}

func bridgeLink(t *testing.T, lanes, spares int) *phy.Link {
	t.Helper()
	link, err := phy.New(phy.Config{
		Lanes:             lanes,
		Spares:            spares,
		FEC:               phy.NoFEC{},
		UnitLen:           63,
		PerChannelBitRate: 2e9,
		Seed:              1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return link
}

// Failures absorbed by spares must not publish anything; once spares
// run out, each lane loss publishes exactly one shrinking fraction.
func TestBridgeSparesAbsorbThenDegrade(t *testing.T) {
	link := bridgeLink(t, 10, 2)
	eng := sim.NewEngine(1)
	sink := &recordingSink{}
	b := NewBridge(link, sink, 7, eng)
	b.Install()

	fail := func(ch int) {
		eng.After(1e-6, func() { link.FailChannel(ch) })
		eng.Run()
	}

	fail(0)
	fail(1)
	if len(sink.calls) != 0 {
		t.Fatalf("spare-absorbed failures published capacity: %+v", sink.calls)
	}
	if b.Fraction() != 1 || b.Renegotiations() != 0 {
		t.Fatalf("fraction=%v renegs=%d, want 1/0", b.Fraction(), b.Renegotiations())
	}

	fail(2) // spares exhausted: 9/10 lanes
	fail(3) // 8/10
	if len(sink.calls) != 2 {
		t.Fatalf("published %d times, want 2: %+v", len(sink.calls), sink.calls)
	}
	if sink.calls[0].link != 7 || sink.calls[0].frac != 0.9 || sink.calls[1].frac != 0.8 {
		t.Fatalf("wrong publications: %+v", sink.calls)
	}
	if b.Renegotiations() != 2 {
		t.Fatalf("renegotiations = %d, want 2", b.Renegotiations())
	}
}

// Simultaneous failures (same engine instant) coalesce into one
// renegotiation at the settled fraction.
func TestBridgeCoalescesSimultaneousFailures(t *testing.T) {
	link := bridgeLink(t, 10, 0)
	eng := sim.NewEngine(1)
	sink := &recordingSink{}
	b := NewBridge(link, sink, 0, eng)
	b.Install()

	eng.After(1e-6, func() {
		link.FailChannel(0)
		link.FailChannel(1)
		link.FailChannel(2)
	})
	eng.Run()

	if len(sink.calls) != 1 {
		t.Fatalf("published %d times, want 1 coalesced: %+v", len(sink.calls), sink.calls)
	}
	if sink.calls[0].frac != 0.7 {
		t.Fatalf("coalesced fraction = %v, want 0.7", sink.calls[0].frac)
	}
}

// Installing the bridge must chain, not replace, an existing monitor
// hook.
func TestBridgeChainsExistingHook(t *testing.T) {
	link := bridgeLink(t, 4, 0)
	eng := sim.NewEngine(1)
	var hookCalls int
	link.Monitor().SetTransitionHook(func(int, phy.ChannelState, phy.ChannelState) { hookCalls++ })
	b := NewBridge(link, &recordingSink{}, 0, eng)
	b.Install()

	eng.After(1e-6, func() { link.FailChannel(0) })
	eng.Run()
	if hookCalls == 0 {
		t.Fatal("pre-existing transition hook was replaced, not chained")
	}
	if b.Renegotiations() != 1 {
		t.Fatalf("renegotiations = %d, want 1", b.Renegotiations())
	}
}
