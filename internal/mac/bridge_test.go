package mac

import (
	"testing"

	"mosaic/internal/phy"
	"mosaic/internal/sim"
)

// recordingSink captures every capacity publication.
type recordingSink struct {
	calls []struct {
		link int
		frac float64
	}
}

func (r *recordingSink) SetLinkCapacityFraction(link int, frac float64) {
	r.calls = append(r.calls, struct {
		link int
		frac float64
	}{link, frac})
}

func bridgeLink(t *testing.T, lanes, spares int) *phy.Link {
	t.Helper()
	link, err := phy.New(phy.Config{
		Lanes:             lanes,
		Spares:            spares,
		FEC:               phy.NoFEC{},
		UnitLen:           63,
		PerChannelBitRate: 2e9,
		Seed:              1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return link
}

// Failures absorbed by spares must not publish anything; once spares
// run out, each lane loss publishes exactly one shrinking fraction.
func TestBridgeSparesAbsorbThenDegrade(t *testing.T) {
	link := bridgeLink(t, 10, 2)
	eng := sim.NewEngine(1)
	sink := &recordingSink{}
	b := NewBridge(link, sink, 7, eng)
	b.Install()

	fail := func(ch int) {
		eng.After(1e-6, func() { link.FailChannel(ch) })
		eng.Run()
	}

	fail(0)
	fail(1)
	if len(sink.calls) != 0 {
		t.Fatalf("spare-absorbed failures published capacity: %+v", sink.calls)
	}
	if b.Fraction() != 1 || b.Renegotiations() != 0 {
		t.Fatalf("fraction=%v renegs=%d, want 1/0", b.Fraction(), b.Renegotiations())
	}

	fail(2) // spares exhausted: 9/10 lanes
	fail(3) // 8/10
	if len(sink.calls) != 2 {
		t.Fatalf("published %d times, want 2: %+v", len(sink.calls), sink.calls)
	}
	if sink.calls[0].link != 7 || sink.calls[0].frac != 0.9 || sink.calls[1].frac != 0.8 {
		t.Fatalf("wrong publications: %+v", sink.calls)
	}
	if b.Renegotiations() != 2 {
		t.Fatalf("renegotiations = %d, want 2", b.Renegotiations())
	}
}

// Simultaneous failures (same engine instant) coalesce into one
// renegotiation at the settled fraction.
func TestBridgeCoalescesSimultaneousFailures(t *testing.T) {
	link := bridgeLink(t, 10, 0)
	eng := sim.NewEngine(1)
	sink := &recordingSink{}
	b := NewBridge(link, sink, 0, eng)
	b.Install()

	eng.After(1e-6, func() {
		link.FailChannel(0)
		link.FailChannel(1)
		link.FailChannel(2)
	})
	eng.Run()

	if len(sink.calls) != 1 {
		t.Fatalf("published %d times, want 1 coalesced: %+v", len(sink.calls), sink.calls)
	}
	if sink.calls[0].frac != 0.7 {
		t.Fatalf("coalesced fraction = %v, want 0.7", sink.calls[0].frac)
	}
}

// Installing the bridge must chain, not replace, an existing monitor
// hook.
func TestBridgeChainsExistingHook(t *testing.T) {
	link := bridgeLink(t, 4, 0)
	eng := sim.NewEngine(1)
	var hookCalls int
	link.Monitor().SetTransitionHook(func(int, phy.ChannelState, phy.ChannelState) { hookCalls++ })
	b := NewBridge(link, &recordingSink{}, 0, eng)
	b.Install()

	eng.After(1e-6, func() { link.FailChannel(0) })
	eng.Run()
	if hookCalls == 0 {
		t.Fatal("pre-existing transition hook was replaced, not chained")
	}
	if b.Renegotiations() != 1 {
		t.Fatalf("renegotiations = %d, want 1", b.Renegotiations())
	}
}

// recordingVCSink captures every per-VC capacity publication.
type recordingVCSink struct {
	calls []struct {
		link, vc int
		frac     float64
	}
}

func (r *recordingVCSink) SetVCCapacityFraction(link, vc int, frac float64) {
	r.calls = append(r.calls, struct {
		link, vc int
		frac     float64
	}{link, vc, frac})
}

// A renegotiation with a VC sink attached must also publish each VC's
// class-weighted share of the new fraction, in VC order.
func TestBridgePublishesVCShares(t *testing.T) {
	link := bridgeLink(t, 10, 0)
	eng := sim.NewEngine(1)
	sink := &recordingSink{}
	vcSink := &recordingVCSink{}
	b := NewBridge(link, sink, 7, eng)
	b.VCSink = vcSink
	b.VCClasses = []uint8{0, 1, 2} // weights 4, 2, 1 -> shares 4/7, 2/7, 1/7
	b.Install()

	eng.After(1e-6, func() { link.FailChannel(0) })
	eng.Run()

	if len(vcSink.calls) != 3 {
		t.Fatalf("published %d VC shares, want 3: %+v", len(vcSink.calls), vcSink.calls)
	}
	total := 0.0
	for vc, c := range vcSink.calls {
		if c.link != 7 || c.vc != vc {
			t.Fatalf("publication %d targeted (link %d, vc %d)", vc, c.link, c.vc)
		}
		want := 0.9 * float64(ClassWeight(uint8(vc))) / 7
		if diff := c.frac - want; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("vc %d share = %v, want %v", vc, c.frac, want)
		}
		total += c.frac
	}
	if diff := total - 0.9; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("VC shares sum to %v, want the link fraction 0.9", total)
	}
}

// With no VCClasses configured, a VC sink still hears about the single
// implied class-0 channel at the full link fraction.
func TestBridgeVCSinkDefaultsToOneVC(t *testing.T) {
	link := bridgeLink(t, 10, 0)
	eng := sim.NewEngine(1)
	vcSink := &recordingVCSink{}
	b := NewBridge(link, &recordingSink{}, 3, eng)
	b.VCSink = vcSink
	b.Install()

	eng.After(1e-6, func() { link.FailChannel(0) })
	eng.Run()
	if len(vcSink.calls) != 1 || vcSink.calls[0].vc != 0 || vcSink.calls[0].frac != 0.9 {
		t.Fatalf("default VC publication = %+v, want one (vc 0, 0.9)", vcSink.calls)
	}
}
