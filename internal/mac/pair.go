package mac

import (
	"fmt"

	"mosaic/internal/phy"
)

// PairConfig parameterizes a full-duplex MAC link: two endpoints joined
// by a forward and a reverse PHY link.
type PairConfig struct {
	// PHYFrameLen is the size of the client frames handed to the PHY;
	// the superframe payload is split into chunks of this many bytes
	// (0 = DefaultPHYFrameLen). The endpoint PayloadBudget is rounded up
	// to a whole number of PHY frames.
	PHYFrameLen int

	// Endpoint configures both LLR endpoints symmetrically.
	Endpoint Config
}

// DefaultPHYFrameLen matches the PHY's default RS-lite unit length, so
// one lost unit costs about one MAC chunk.
const DefaultPHYFrameLen = 243

// Pair drives two LLR endpoints over a pair of unidirectional PHY
// links. Tick moves one superframe in each direction: A's payload is
// chunked into PHY frames, pushed through fwd, and the surviving chunks
// are deframed by B (and symmetrically B over rev to A). Chunk slices
// are headers into the payload buffer, so a tick allocates nothing on
// the MAC side.
type Pair struct {
	A, B     *Endpoint
	fwd, rev *phy.Link

	phyFrameLen int
	chunksF     [][]byte
	chunksR     [][]byte

	// FwdStats/RevStats hold the PHY ExchangeStats of the latest Tick.
	FwdStats, RevStats phy.ExchangeStats
}

// NewPair wires two endpoints over the given links. onDeliverA receives
// packets arriving AT A (sent by B), onDeliverB those arriving at B.
func NewPair(fwd, rev *phy.Link, cfg PairConfig, onDeliverA, onDeliverB func([]byte)) (*Pair, error) {
	if fwd == nil || rev == nil {
		return nil, fmt.Errorf("mac: NewPair requires both links")
	}
	fl := cfg.PHYFrameLen
	if fl <= 0 {
		fl = DefaultPHYFrameLen
	}
	if fl < 3 {
		return nil, fmt.Errorf("mac: PHYFrameLen %d below the PHY minimum of 3", fl)
	}
	ec := cfg.Endpoint
	if ec.PayloadBudget <= 0 {
		return nil, fmt.Errorf("mac: Endpoint.PayloadBudget is required")
	}
	// Round the budget up to a whole number of PHY frames so every chunk
	// is full-size (the PHY rejects frames under 3 bytes).
	if rem := ec.PayloadBudget % fl; rem != 0 {
		ec.PayloadBudget += fl - rem
	}
	a, err := NewEndpoint(ec, onDeliverA)
	if err != nil {
		return nil, err
	}
	b, err := NewEndpoint(ec, onDeliverB)
	if err != nil {
		return nil, err
	}
	nchunks := ec.PayloadBudget / fl
	return &Pair{
		A: a, B: b, fwd: fwd, rev: rev,
		phyFrameLen: fl,
		chunksF:     make([][]byte, nchunks),
		chunksR:     make([][]byte, nchunks),
	}, nil
}

// chunk splits payload into phyFrameLen-sized views stored in dst.
func chunk(payload []byte, size int, dst [][]byte) [][]byte {
	dst = dst[:0]
	for off := 0; off < len(payload); off += size {
		end := off + size
		if end > len(payload) {
			end = len(payload)
		}
		dst = append(dst, payload[off:end])
	}
	return dst
}

// Tick runs one superframe in both directions.
func (p *Pair) Tick() error {
	p.chunksF = chunk(p.A.BuildSuperframe(), p.phyFrameLen, p.chunksF)
	delivered, st, err := p.fwd.Exchange(p.chunksF)
	if err != nil {
		return fmt.Errorf("mac: forward exchange: %w", err)
	}
	p.FwdStats = st
	p.B.Accept(delivered)

	p.chunksR = chunk(p.B.BuildSuperframe(), p.phyFrameLen, p.chunksR)
	delivered, st, err = p.rev.Exchange(p.chunksR)
	if err != nil {
		return fmt.Errorf("mac: reverse exchange: %w", err)
	}
	p.RevStats = st
	p.A.Accept(delivered)
	return nil
}
