package mac

import (
	"bytes"
	"testing"

	"mosaic/internal/refmodel"
)

// FuzzMACDeframe hammers the deframer with arbitrary byte streams:
// truncated, corrupted, and adversarially crafted input must never
// panic, every emitted frame must carry a CRC-valid encoding, and the
// scan must be deterministic (two passes over the same bytes agree).
func FuzzMACDeframe(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, 300))
	f.Add(AppendFrame(nil, FlagData|FlagAck, 7, 9, []byte("seed payload")))
	corrupted := AppendFrame(nil, FlagData, 1, 0, bytes.Repeat([]byte{0xAA}, 40))
	corrupted[len(corrupted)/2] ^= 0x10
	f.Add(corrupted)
	truncated := AppendFrame(nil, FlagData, 2, 0, bytes.Repeat([]byte{0xBB}, 40))
	f.Add(truncated[:len(truncated)-5])
	f.Add([]byte{Magic0, Magic1, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	// v2 multi-VC corpus: clean v2 frames on several channels, a sack
	// pure-ack, a v1/v2 mix, a corrupted v2 frame, and a v2 header cut off
	// right after the flags byte (the v2-specific truncation path).
	f.Add(AppendFrameVC(nil, FlagData|FlagAck, 3, 7, 9, []byte("vc seed")))
	mixed := AppendFrame(nil, FlagData, 0, 0, []byte("v1 leg"))
	mixed = AppendFrameVC(mixed, FlagData, 1, 1, 0, []byte("v2 leg"))
	mixed = AppendFrameVC(mixed, FlagAck|FlagSack, 2, 0, 5, make([]byte, SackBytes))
	f.Add(mixed)
	corruptedV2 := AppendFrameVC(nil, FlagData, 255, 1, 0, bytes.Repeat([]byte{0xCC}, 40))
	corruptedV2[len(corruptedV2)/2] ^= 0x10
	f.Add(corruptedV2)
	f.Add([]byte{Magic0, Magic1, FlagV2 | FlagData, 9, 0, 1, 0, 2, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		var d1 Deframer
		var frames1 []Frame
		d1.Deframe(data, func(fr Frame) {
			// Re-encoding an emitted frame under its own header version
			// must reproduce a byte range of the input exactly — the
			// deframer never invents frames.
			var enc []byte
			if fr.Version() == 2 {
				enc = AppendFrameVC(nil, fr.Flags, fr.VC, fr.Seq, fr.Ack, fr.Payload)
			} else {
				if fr.VC != 0 {
					t.Fatalf("v1 frame carries VC %d: %+v", fr.VC, fr)
				}
				enc = AppendFrame(nil, fr.Flags, fr.Seq, fr.Ack, fr.Payload)
			}
			if !bytes.Contains(data, enc) {
				t.Fatalf("emitted frame not present in input: %+v", fr)
			}
			fr.Payload = append([]byte(nil), fr.Payload...)
			frames1 = append(frames1, fr)
		})

		// Determinism: a second pass sees the identical sequence.
		var d2 Deframer
		var frames2 []Frame
		d2.Deframe(data, func(fr Frame) {
			fr.Payload = append([]byte(nil), fr.Payload...)
			frames2 = append(frames2, fr)
		})
		if len(frames1) != len(frames2) || d1.Stats != d2.Stats {
			t.Fatalf("non-deterministic scan: %d/%d frames, %+v vs %+v",
				len(frames1), len(frames2), d1.Stats, d2.Stats)
		}
		for i := range frames1 {
			a, b := frames1[i], frames2[i]
			if a.Flags != b.Flags || a.VC != b.VC || a.Seq != b.Seq || a.Ack != b.Ack || !bytes.Equal(a.Payload, b.Payload) {
				t.Fatalf("frame %d diverged between passes", i)
			}
		}

		// Every input byte is accounted for exactly once: framed bytes
		// (at each frame's own header-version overhead), idle fill,
		// resync skips, and one consumed magic byte per reject event.
		var framed uint64
		for _, fr := range frames1 {
			if fr.Version() == 2 {
				framed += uint64(len(fr.Payload)) + OverheadV2
			} else {
				framed += uint64(len(fr.Payload)) + Overhead
			}
		}
		total := framed + d1.Stats.IdleBytes + d1.Stats.SkippedBytes +
			d1.Stats.HeaderRejects + d1.Stats.CRCRejects + d1.Stats.Truncated
		if total != uint64(len(data)) {
			t.Fatalf("byte accounting: total=%d stats=%+v, input=%d",
				total, d1.Stats, len(data))
		}

		// Differential oracle: the byte-at-a-time reference deframer must
		// recover the identical frame sequence and reject taxonomy.
		refFrames, refStats := refmodel.MACDeframe(data, 0)
		if len(refFrames) != len(frames1) {
			t.Fatalf("reference recovered %d frames, optimized %d", len(refFrames), len(frames1))
		}
		for i := range frames1 {
			a, b := frames1[i], refFrames[i]
			if a.Flags != b.Flags || a.VC != b.VC || a.Seq != b.Seq || a.Ack != b.Ack || !bytes.Equal(a.Payload, b.Payload) {
				t.Fatalf("frame %d differs from reference: optimized %+v reference %+v", i, a, b)
			}
		}
		optStats := refmodel.MACDeframeStats{
			Frames:        d1.Stats.Frames,
			PayloadBytes:  d1.Stats.PayloadBytes,
			IdleBytes:     d1.Stats.IdleBytes,
			SkippedBytes:  d1.Stats.SkippedBytes,
			HeaderRejects: d1.Stats.HeaderRejects,
			CRCRejects:    d1.Stats.CRCRejects,
			Truncated:     d1.Stats.Truncated,
		}
		if optStats != refStats {
			t.Fatalf("deframe stats differ: optimized %+v reference %+v", optStats, refStats)
		}

		// Feeding arbitrary bytes through an endpoint must not panic
		// either (acks, sacks, and VC numbers from garbage are all
		// bounds-checked) — for both ARQ engines.
		ep, err := NewEndpoint(Config{PayloadBudget: 4096}, nil)
		if err != nil {
			t.Fatal(err)
		}
		ep.Accept([][]byte{data})
		_ = ep.BuildSuperframe()
		sr, err := NewEndpointVC(Config{
			PayloadBudget: 4096, ARQ: ARQSelectiveRepeat,
			VCs: 4, VCClass: []uint8{0, 1, 2, 0},
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		sr.Accept([][]byte{data})
		_ = sr.BuildSuperframe()
	})
}
