package mac

import (
	"bytes"
	"testing"

	"mosaic/internal/refmodel"
)

// FuzzMACDeframe hammers the deframer with arbitrary byte streams:
// truncated, corrupted, and adversarially crafted input must never
// panic, every emitted frame must carry a CRC-valid encoding, and the
// scan must be deterministic (two passes over the same bytes agree).
func FuzzMACDeframe(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, 300))
	f.Add(AppendFrame(nil, FlagData|FlagAck, 7, 9, []byte("seed payload")))
	corrupted := AppendFrame(nil, FlagData, 1, 0, bytes.Repeat([]byte{0xAA}, 40))
	corrupted[len(corrupted)/2] ^= 0x10
	f.Add(corrupted)
	truncated := AppendFrame(nil, FlagData, 2, 0, bytes.Repeat([]byte{0xBB}, 40))
	f.Add(truncated[:len(truncated)-5])
	f.Add([]byte{Magic0, Magic1, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		var d1 Deframer
		var frames1 []Frame
		d1.Deframe(data, func(fr Frame) {
			// Re-encoding an emitted frame must reproduce a byte range of
			// the input exactly — the deframer never invents frames.
			enc := AppendFrame(nil, fr.Flags, fr.Seq, fr.Ack, fr.Payload)
			if !bytes.Contains(data, enc) {
				t.Fatalf("emitted frame not present in input: %+v", fr)
			}
			fr.Payload = append([]byte(nil), fr.Payload...)
			frames1 = append(frames1, fr)
		})

		// Determinism: a second pass sees the identical sequence.
		var d2 Deframer
		var frames2 []Frame
		d2.Deframe(data, func(fr Frame) {
			fr.Payload = append([]byte(nil), fr.Payload...)
			frames2 = append(frames2, fr)
		})
		if len(frames1) != len(frames2) || d1.Stats != d2.Stats {
			t.Fatalf("non-deterministic scan: %d/%d frames, %+v vs %+v",
				len(frames1), len(frames2), d1.Stats, d2.Stats)
		}
		for i := range frames1 {
			a, b := frames1[i], frames2[i]
			if a.Flags != b.Flags || a.Seq != b.Seq || a.Ack != b.Ack || !bytes.Equal(a.Payload, b.Payload) {
				t.Fatalf("frame %d diverged between passes", i)
			}
		}

		// Every input byte is accounted for exactly once: framed bytes,
		// idle fill, resync skips, and one consumed magic byte per
		// reject event.
		var framed uint64
		for _, fr := range frames1 {
			framed += uint64(len(fr.Payload)) + Overhead
		}
		total := framed + d1.Stats.IdleBytes + d1.Stats.SkippedBytes +
			d1.Stats.HeaderRejects + d1.Stats.CRCRejects + d1.Stats.Truncated
		if total != uint64(len(data)) {
			t.Fatalf("byte accounting: total=%d stats=%+v, input=%d",
				total, d1.Stats, len(data))
		}

		// Differential oracle: the byte-at-a-time reference deframer must
		// recover the identical frame sequence and reject taxonomy.
		refFrames, refStats := refmodel.MACDeframe(data, 0)
		if len(refFrames) != len(frames1) {
			t.Fatalf("reference recovered %d frames, optimized %d", len(refFrames), len(frames1))
		}
		for i := range frames1 {
			a, b := frames1[i], refFrames[i]
			if a.Flags != b.Flags || a.Seq != b.Seq || a.Ack != b.Ack || !bytes.Equal(a.Payload, b.Payload) {
				t.Fatalf("frame %d differs from reference: optimized %+v reference %+v", i, a, b)
			}
		}
		optStats := refmodel.MACDeframeStats{
			Frames:        d1.Stats.Frames,
			PayloadBytes:  d1.Stats.PayloadBytes,
			IdleBytes:     d1.Stats.IdleBytes,
			SkippedBytes:  d1.Stats.SkippedBytes,
			HeaderRejects: d1.Stats.HeaderRejects,
			CRCRejects:    d1.Stats.CRCRejects,
			Truncated:     d1.Stats.Truncated,
		}
		if optStats != refStats {
			t.Fatalf("deframe stats differ: optimized %+v reference %+v", optStats, refStats)
		}

		// Feeding arbitrary bytes through an endpoint must not panic
		// either (acks from garbage are bounds-checked).
		ep, err := NewEndpoint(Config{PayloadBudget: 4096}, nil)
		if err != nil {
			t.Fatal(err)
		}
		ep.Accept([][]byte{data})
		_ = ep.BuildSuperframe()
	})
}
