package mac

import (
	"errors"
	"fmt"
	"math/rand"

	"mosaic/internal/faultinject"
	"mosaic/internal/phy"
	"mosaic/internal/sim"
	"mosaic/internal/telemetry"
)

// SessionConfig describes one engine-driven MAC session: a full-duplex
// pair, client traffic A->B, and a fault schedule replayed against the
// forward link.
type SessionConfig struct {
	Engine *sim.Engine // required; the caller runs it
	Fwd    *phy.Link   // required; carries data, receives the faults
	Rev    *phy.Link   // required; carries acks back

	Pair PairConfig // endpoint/framing knobs; PayloadBudget 0 = derived

	// Schedule is replayed against Fwd with faultinject semantics
	// (kill/aging/burst/correlated, superframe-indexed).
	Schedule faultinject.Schedule

	Superframes  int      // ticks to run (required > 0)
	Interval     sim.Time // simulated time between ticks (required > 0)
	PacketsPerSF int      // client packets queued at A per tick (on VC 0)
	PacketLen    int      // bytes per client packet (required > 0)
	Seed         int64    // client payload seed

	// VCPackets, when non-empty, replaces PacketsPerSF: VCPackets[vc]
	// client packets are queued on each virtual channel per tick. Length
	// must not exceed the endpoint VC count.
	VCPackets []int

	// BurstEvery/BurstPackets model periodic incast: every BurstEvery
	// superframes (when > 0), BurstPackets extra packets land on VC 0 in
	// the same tick, on top of the steady traffic.
	BurstEvery   int
	BurstPackets int

	// Bridge, when non-nil, is Installed on Fwd's monitor before the
	// first tick; its renegotiations land in the event log.
	Bridge *Bridge

	// Metrics, when non-nil, receives MAC endpoint metrics ("a", "b"),
	// the full per-link set for Fwd, and bridge renegotiation state, all
	// pushed at tick boundaries. Write-only: enabling it cannot change
	// the event log.
	Metrics *telemetry.Registry

	// MaxLog caps the event log (0 = 100000).
	MaxLog int
}

// Session is an in-flight MAC run. Construct with NewSession, then run
// the engine; Result is valid once the engine drains.
type Session struct {
	cfg     SessionConfig
	pair    *Pair
	applier *faultinject.Applier
	packets [][]byte
	handled map[int]bool

	col     *telemetry.MACCollector
	linkCol *telemetry.LinkCollector

	sf         int
	lanesStart int
	degraded   bool
	exhausted  bool
	prevRetx   uint64
	err        error

	log    []string
	maxLog int
}

// Result summarizes a finished session.
type Result struct {
	Log []string `json:"log"`

	Superframes int    `json:"superframes"`
	Err         string `json:"err,omitempty"`

	A Stats `json:"a"` // sender-side endpoint
	B Stats `json:"b"` // receiver-side endpoint

	// AVCs/BVCs break the endpoint counters down per virtual channel
	// (index = VC number).
	AVCs []VCStats `json:"a_vcs,omitempty"`
	BVCs []VCStats `json:"b_vcs,omitempty"`

	LanesStart     int     `json:"lanes_start"`
	LanesEnd       int     `json:"lanes_end"`
	SparesEnd      int     `json:"spares_end"`
	Renegotiations uint64  `json:"renegotiations"`
	Fraction       float64 `json:"fraction"`
}

// NewSession validates cfg, wires the pair, applier, monitor hook, and
// optional bridge/telemetry, and schedules the first tick on the
// engine at Now()+Interval. Run the engine to completion afterwards.
func NewSession(cfg SessionConfig) (*Session, error) {
	if cfg.Engine == nil || cfg.Fwd == nil || cfg.Rev == nil {
		return nil, errors.New("mac: SessionConfig needs Engine, Fwd, Rev")
	}
	if cfg.Superframes <= 0 || cfg.Interval <= 0 {
		return nil, errors.New("mac: need Superframes > 0 and Interval > 0")
	}
	perTick := cfg.PacketsPerSF
	if len(cfg.VCPackets) > 0 {
		perTick = 0
		for vc, n := range cfg.VCPackets {
			if n < 0 {
				return nil, fmt.Errorf("mac: VCPackets[%d] = %d < 0", vc, n)
			}
			perTick += n
		}
	}
	if perTick <= 0 || cfg.PacketLen <= 0 {
		return nil, errors.New("mac: need PacketsPerSF (or VCPackets) > 0 and PacketLen > 0")
	}
	if cfg.BurstEvery < 0 || cfg.BurstPackets < 0 {
		return nil, errors.New("mac: BurstEvery/BurstPackets must be >= 0")
	}
	if err := cfg.Schedule.Validate(); err != nil {
		return nil, err
	}
	pc := cfg.Pair
	vcs := pc.Endpoint.VCs
	if vcs == 0 {
		vcs = 1
	}
	if len(cfg.VCPackets) > vcs {
		return nil, fmt.Errorf("mac: VCPackets names %d VCs but the endpoint has %d", len(cfg.VCPackets), vcs)
	}
	if pc.Endpoint.MaxPayload <= 0 {
		pc.Endpoint.MaxPayload = cfg.PacketLen
	}
	if pc.Endpoint.Window <= 0 {
		w := 4 * perTick
		if w < DefaultWindow {
			w = DefaultWindow
		}
		pc.Endpoint.Window = w
	}
	burst := 0
	if cfg.BurstEvery > 0 {
		burst = cfg.BurstPackets
	}
	if pc.Endpoint.PayloadBudget <= 0 {
		// Room for one tick of fresh data (incl. an incast burst) plus a
		// full retransmission round plus a pure ack.
		pc.Endpoint.PayloadBudget = (2*(perTick+burst) + 1) * (cfg.PacketLen + pc.Endpoint.wireOverhead())
	}

	s := &Session{
		cfg:        cfg,
		handled:    make(map[int]bool),
		lanesStart: cfg.Fwd.Mapper().NumLanes(),
		maxLog:     cfg.MaxLog,
	}
	if s.maxLog <= 0 {
		s.maxLog = 100000
	}

	pair, err := NewPair(cfg.Fwd, cfg.Rev, pc, nil, nil)
	if err != nil {
		return nil, err
	}
	s.pair = pair

	// Fixed client traffic, regenerated from the seed (the same packets
	// every tick, like the soak harness). The pool covers the steady
	// per-tick load plus one incast burst.
	rng := rand.New(rand.NewSource(cfg.Seed))
	s.packets = make([][]byte, perTick+burst)
	for i := range s.packets {
		s.packets[i] = make([]byte, cfg.PacketLen)
		rng.Read(s.packets[i])
	}

	s.applier = faultinject.NewApplier(cfg.Fwd, cfg.Schedule)
	s.applier.OnInject = func(e faultinject.Event) {
		s.logf("inject %v", e)
	}

	if cfg.Metrics != nil {
		s.col = telemetry.NewMACCollector(cfg.Metrics)
		s.linkCol = telemetry.NewLinkCollector(cfg.Metrics, cfg.Fwd)
	}

	// Health transitions land in the log as they happen. The bridge (if
	// any) chains onto this hook, so install ours first.
	cfg.Fwd.Monitor().SetTransitionHook(func(physical int, from, to phy.ChannelState) {
		s.logf("sf=%d transition ch=%d %v->%v", s.sf, physical, from, to)
		if s.linkCol != nil {
			s.linkCol.OnTransition(physical, from, to)
		}
	})
	if cfg.Bridge != nil {
		cfg.Bridge.Install()
		if cfg.Bridge.OnRenegotiate == nil {
			cfg.Bridge.OnRenegotiate = func(at sim.Time, lanes int, frac float64) {
				s.logf("sf=%d renegotiate t=%v lanes=%d frac=%.4f", s.sf, at, lanes, frac)
			}
		}
	}

	cfg.Engine.After(cfg.Interval, s.tick)
	return s, nil
}

func (s *Session) logf(format string, args ...any) {
	if len(s.log) < s.maxLog {
		s.log = append(s.log, fmt.Sprintf(format, args...))
	}
}

// queueTraffic queues this tick's client packets at A: either
// PacketsPerSF on VC 0 or the per-VC VCPackets pattern, plus a periodic
// incast burst on VC 0. Returns false on a send error (session aborts).
func (s *Session) queueTraffic() bool {
	i := 0
	send := func(vc, n int) bool {
		for k := 0; k < n; k++ {
			if err := s.pair.A.SendVC(vc, s.packets[i]); err != nil {
				s.err = err
				s.logf("sf=%d send error: %v", s.sf, err)
				return false
			}
			i++
		}
		return true
	}
	if len(s.cfg.VCPackets) > 0 {
		for vc, n := range s.cfg.VCPackets {
			if !send(vc, n) {
				return false
			}
		}
	} else if !send(0, s.cfg.PacketsPerSF) {
		return false
	}
	if s.cfg.BurstEvery > 0 && s.sf%s.cfg.BurstEvery == 0 {
		s.logf("sf=%d incast burst +%d", s.sf, s.cfg.BurstPackets)
		if !send(0, s.cfg.BurstPackets) {
			return false
		}
	}
	return true
}

// tick runs one superframe: inject faults, queue client packets, move
// the pair one round trip, spare out failed channels, then log
// milestones and push telemetry. Bridge syncs scheduled by the monitor
// hook run after this callback returns (same simulated instant), so
// they observe the post-remap lane count.
func (s *Session) tick() {
	s.applier.Step(s.sf)

	if !s.queueTraffic() {
		return
	}
	if err := s.pair.Tick(); err != nil {
		s.err = err
		s.logf("sf=%d exchange error: %v", s.sf, err)
		return
	}

	// Reactive sparing: monitor-failed channels on the forward link are
	// remapped at the boundary (the bridge hook has already scheduled a
	// renegotiation sync for this instant).
	for _, p := range s.cfg.Fwd.Monitor().FailedChannels() {
		if s.handled[p] {
			continue
		}
		s.handled[p] = true
		ev := s.cfg.Fwd.FailChannel(p)
		s.logf("sf=%d remap %v", s.sf, ev)
	}

	// Retransmission activity (the LLR doing its job) is log-worthy.
	if retx := s.pair.A.Stats().Retransmits; retx > s.prevRetx {
		s.logf("sf=%d retx +%d (total=%d inflight=%d)",
			s.sf, retx-s.prevRetx, retx, s.pair.A.Stats().InFlight)
		s.prevRetx = retx
	}

	// Milestones.
	if !s.degraded && s.cfg.Fwd.Mapper().NumLanes() < s.lanesStart {
		s.degraded = true
		s.logf("sf=%d degraded lanes=%d/%d", s.sf, s.cfg.Fwd.Mapper().NumLanes(), s.lanesStart)
	}
	if !s.exhausted && s.cfg.Fwd.Mapper().SparesLeft() == 0 {
		s.exhausted = true
		s.logf("sf=%d spares-exhausted", s.sf)
	}

	if s.col != nil {
		s.col.Sync("a", s.pair.A.Stats().Export())
		s.col.Sync("b", s.pair.B.Stats().Export())
		for vc := 0; vc < s.pair.A.NumVCs(); vc++ {
			s.col.SyncVC("a", vc, s.pair.A.VCSnapshot(vc).Export())
		}
		for vc := 0; vc < s.pair.B.NumVCs(); vc++ {
			s.col.SyncVC("b", vc, s.pair.B.VCSnapshot(vc).Export())
		}
		if s.cfg.Bridge != nil {
			s.col.SyncBridge(s.cfg.Bridge.Renegotiations(), s.cfg.Bridge.Fraction())
		}
		s.linkCol.ObserveExchange(s.pair.FwdStats)
		s.linkCol.Sync()
	}

	s.sf++
	if s.sf < s.cfg.Superframes {
		s.cfg.Engine.After(s.cfg.Interval, s.tick)
	}
}

// Result snapshots the session after the engine has drained.
func (s *Session) Result() *Result {
	r := &Result{
		Log:         s.log,
		Superframes: s.sf,
		A:           s.pair.A.Stats(),
		B:           s.pair.B.Stats(),
		LanesStart:  s.lanesStart,
		LanesEnd:    s.cfg.Fwd.Mapper().NumLanes(),
		SparesEnd:   s.cfg.Fwd.Mapper().SparesLeft(),
		Fraction:    1,
	}
	for vc := 0; vc < s.pair.A.NumVCs(); vc++ {
		r.AVCs = append(r.AVCs, s.pair.A.VCSnapshot(vc))
	}
	for vc := 0; vc < s.pair.B.NumVCs(); vc++ {
		r.BVCs = append(r.BVCs, s.pair.B.VCSnapshot(vc))
	}
	if s.err != nil {
		r.Err = s.err.Error()
	}
	if s.cfg.Bridge != nil {
		r.Renegotiations = s.cfg.Bridge.Renegotiations()
		r.Fraction = s.cfg.Bridge.Fraction()
	}
	return r
}

// Summary renders the aggregate counters as a short multi-line report.
func (r *Result) Summary() string {
	return fmt.Sprintf(
		"superframes=%d delivered=%d/%d queued (dups=%d disc=%d reord=%d)\n"+
			"retx=%d timeouts=%d stalls=%d pure_acks=%d crc_rejects=%d resync_bytes=%d\n"+
			"lanes=%d->%d spares_left=%d renegotiations=%d fraction=%.4f",
		r.Superframes, r.B.Delivered, r.A.PacketsQueued, r.B.Duplicates, r.B.Discarded, r.B.Reordered,
		r.A.Retransmits, r.A.Timeouts, r.A.CreditStalls, r.B.AcksTx+r.A.AcksTx,
		r.B.Deframe.CRCRejects, r.B.Deframe.SkippedBytes,
		r.LanesStart, r.LanesEnd, r.SparesEnd, r.Renegotiations, r.Fraction)
}

// Export converts the endpoint stats into the neutral telemetry shape.
func (s Stats) Export() telemetry.MACStats {
	return telemetry.MACStats{
		PacketsQueued: s.PacketsQueued,
		DataTx:        s.DataTx,
		Retransmits:   s.Retransmits,
		AcksTx:        s.AcksTx,
		DataRx:        s.DataRx,
		Delivered:     s.Delivered,
		Duplicates:    s.Duplicates,
		Discarded:     s.Discarded,
		Reordered:     s.Reordered,
		AcksRx:        s.AcksRx,
		SacksRx:       s.SacksRx,
		UnknownVC:     s.UnknownVC,
		CreditStalls:  s.CreditStalls,
		Timeouts:      s.Timeouts,
		InFlight:      s.InFlight,
		QueueDepth:    s.QueueDepth,
		ReorderDepth:  s.ReorderDepth,
		DeframeFrames: s.Deframe.Frames,
		CRCRejects:    s.Deframe.CRCRejects,
		HeaderRejects: s.Deframe.HeaderRejects,
		SkippedBytes:  s.Deframe.SkippedBytes,
	}
}

// ExportVC converts one VC's stats into the neutral telemetry shape.
func (s VCStats) Export() telemetry.MACVCStats {
	return telemetry.MACVCStats{
		Class:         int(s.Class),
		PacketsQueued: s.PacketsQueued,
		DataTx:        s.DataTx,
		Retransmits:   s.Retransmits,
		Delivered:     s.Delivered,
		Duplicates:    s.Duplicates,
		Discarded:     s.Discarded,
		Reordered:     s.Reordered,
		CreditStalls:  s.CreditStalls,
		Timeouts:      s.Timeouts,
		InFlight:      s.InFlight,
		QueueDepth:    s.QueueDepth,
		ReorderDepth:  s.ReorderDepth,
	}
}
