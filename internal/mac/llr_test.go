package mac

import (
	"bytes"
	"fmt"
	"testing"
)

// loopback couples two endpoints directly: each tick hands A's
// superframe to B and vice versa, optionally dropping whole directions
// to model lost superframes.
type loopback struct {
	a, b *Endpoint
}

func newLoopback(t *testing.T, cfg Config) *loopback {
	t.Helper()
	lb := &loopback{}
	var err error
	if lb.a, err = NewEndpoint(cfg, nil); err != nil {
		t.Fatal(err)
	}
	if lb.b, err = NewEndpoint(cfg, nil); err != nil {
		t.Fatal(err)
	}
	return lb
}

func newLoopbackDeliver(t *testing.T, cfg Config, onA, onB func([]byte)) *loopback {
	t.Helper()
	lb := &loopback{}
	var err error
	if lb.a, err = NewEndpoint(cfg, onA); err != nil {
		t.Fatal(err)
	}
	if lb.b, err = NewEndpoint(cfg, onB); err != nil {
		t.Fatal(err)
	}
	return lb
}

// tick moves one superframe each way. dropFwd/dropRev lose that
// direction's superframe entirely.
func (lb *loopback) tick(dropFwd, dropRev bool) {
	sfA := lb.a.BuildSuperframe()
	if dropFwd {
		lb.b.Accept(nil)
	} else {
		lb.b.Accept([][]byte{sfA})
	}
	sfB := lb.b.BuildSuperframe()
	if dropRev {
		lb.a.Accept(nil)
	} else {
		lb.a.Accept([][]byte{sfB})
	}
}

func testCfg() Config {
	return Config{Window: 8, RetxTimeout: 2, MaxPayload: 64, PayloadBudget: 2048}
}

func TestLLRInOrderDelivery(t *testing.T) {
	var got [][]byte
	lb := newLoopbackDeliver(t, testCfg(), nil, func(p []byte) {
		got = append(got, append([]byte(nil), p...))
	})
	var want [][]byte
	for i := 0; i < 30; i++ {
		p := []byte(fmt.Sprintf("packet-%03d", i))
		want = append(want, p)
		if err := lb.a.Send(p); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 12; i++ {
		lb.tick(false, false)
	}
	if len(got) != len(want) {
		t.Fatalf("delivered %d packets, want %d; a=%+v b=%+v", len(got), len(want), lb.a.Stats(), lb.b.Stats())
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("packet %d = %q, want %q", i, got[i], want[i])
		}
	}
	if s := lb.a.Stats(); s.Retransmits != 0 || s.InFlight != 0 {
		t.Fatalf("clean link retransmitted or left frames in flight: %+v", s)
	}
}

// Dropping forward superframes forces go-back-N retransmission; every
// packet must still arrive exactly once, in order.
func TestLLRRecoversFromLoss(t *testing.T) {
	var got []string
	lb := newLoopbackDeliver(t, testCfg(), nil, func(p []byte) {
		got = append(got, string(p))
	})
	sent := 0
	drops := map[int]bool{2: true, 3: true, 7: true}
	for i := 0; i < 40; i++ {
		if sent < 24 && i%2 == 0 {
			for k := 0; k < 3; k++ {
				if err := lb.a.Send([]byte(fmt.Sprintf("p%03d", sent))); err != nil {
					t.Fatal(err)
				}
				sent++
			}
		}
		lb.tick(drops[i], false)
	}
	if len(got) != sent {
		t.Fatalf("delivered %d, want %d; a=%+v", len(got), sent, lb.a.Stats())
	}
	for i, p := range got {
		if want := fmt.Sprintf("p%03d", i); p != want {
			t.Fatalf("slot %d = %q, want %q", i, p, want)
		}
	}
	if lb.a.Stats().Retransmits == 0 || lb.a.Stats().Timeouts == 0 {
		t.Fatalf("loss produced no retransmissions: %+v", lb.a.Stats())
	}
}

// Dropping the reverse direction starves A of acks: the window fills,
// credit stalls are counted, and in-flight never exceeds the window.
func TestLLRCreditStall(t *testing.T) {
	cfg := testCfg()
	cfg.Window = 4
	lb := newLoopback(t, cfg)
	for i := 0; i < 20; i++ {
		if err := lb.a.Send([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		lb.tick(false, true) // acks never arrive
		if f := lb.a.Stats().InFlight; f > 4 {
			t.Fatalf("in-flight %d exceeds window 4", f)
		}
	}
	s := lb.a.Stats()
	if s.CreditStalls == 0 {
		t.Fatalf("no credit stalls counted: %+v", s)
	}
	if s.QueueDepth == 0 {
		t.Fatalf("queue drained without acks: %+v", s)
	}
	// Let acks flow again: everything drains.
	for i := 0; i < 30; i++ {
		lb.tick(false, false)
	}
	s = lb.a.Stats()
	if s.InFlight != 0 || s.QueueDepth != 0 {
		t.Fatalf("window did not drain after acks resumed: %+v", s)
	}
	if lb.b.Stats().Delivered != 20 {
		t.Fatalf("delivered %d, want 20", lb.b.Stats().Delivered)
	}
}

// Duplicate data (a retransmission racing a lost ack) must re-ack but
// deliver only once.
func TestLLRDuplicateSuppression(t *testing.T) {
	cfg := testCfg()
	delivered := 0
	b, err := NewEndpoint(cfg, func([]byte) { delivered++ })
	if err != nil {
		t.Fatal(err)
	}
	frame := AppendFrame(nil, FlagData, 0, 0, []byte("dup"))
	b.Accept([][]byte{frame})
	b.Accept([][]byte{frame})
	if delivered != 1 {
		t.Fatalf("delivered %d, want 1", delivered)
	}
	s := b.Stats()
	if s.Duplicates != 1 {
		t.Fatalf("duplicates = %d, want 1; %+v", s.Duplicates, s)
	}
	// The re-ack must be emitted so the sender can advance.
	sf := b.BuildSuperframe()
	var d Deframer
	sawAck := false
	d.Deframe(sf, func(f Frame) {
		if f.Flags&FlagAck != 0 && f.Ack == 1 {
			sawAck = true
		}
	})
	if !sawAck {
		t.Fatal("no ack for the duplicated frame")
	}
}

// A gap (lost frame followed by later seqs) drops the ahead-of-window
// frames — go-back-N has no reorder buffer — and keeps re-acking the
// expected seq.
func TestLLROutOfOrderDrop(t *testing.T) {
	cfg := testCfg()
	delivered := 0
	b, err := NewEndpoint(cfg, func([]byte) { delivered++ })
	if err != nil {
		t.Fatal(err)
	}
	buf := AppendFrame(nil, FlagData, 1, 0, []byte("ahead")) // seq 0 missing
	buf = AppendFrame(buf, FlagData, 2, 0, []byte("ahead"))
	b.Accept([][]byte{buf})
	if delivered != 0 {
		t.Fatalf("delivered %d out-of-order packets", delivered)
	}
	if s := b.Stats(); s.Discarded != 2 {
		t.Fatalf("discarded = %d, want 2", s.Discarded)
	}
	// Now the missing frame arrives: only seq 0 is deliverable (1 and 2
	// were dropped, the sender will replay them).
	b.Accept([][]byte{AppendFrame(nil, FlagData, 0, 0, []byte("filled"))})
	if delivered != 1 {
		t.Fatalf("delivered %d, want 1", delivered)
	}
}

// Garbage acks far outside the window must be ignored, not corrupt the
// replay ring.
func TestLLRIgnoresImplausibleAck(t *testing.T) {
	cfg := testCfg()
	lb := newLoopback(t, cfg)
	for i := 0; i < 4; i++ {
		if err := lb.a.Send([]byte("y")); err != nil {
			t.Fatal(err)
		}
	}
	lb.a.BuildSuperframe() // 4 frames now in flight
	lb.a.Accept([][]byte{AppendFrame(nil, FlagAck, 0, 999, nil)})
	if f := lb.a.Stats().InFlight; f != 4 {
		t.Fatalf("implausible ack changed in-flight to %d", f)
	}
	lb.a.Accept([][]byte{AppendFrame(nil, FlagAck, 0, 4, nil)})
	if f := lb.a.Stats().InFlight; f != 0 {
		t.Fatalf("valid cumulative ack left %d in flight", f)
	}
}

func TestLLRSendRejectsOversize(t *testing.T) {
	cfg := testCfg()
	lb := newLoopback(t, cfg)
	if err := lb.a.Send(make([]byte, cfg.MaxPayload+1)); err == nil {
		t.Fatal("oversize packet accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{Window: 1 << 15, PayloadBudget: 4096},        // window too large
		{MaxPayload: 1 << 16, PayloadBudget: 1 << 17}, // length field overflow
		{MaxPayload: 1024, PayloadBudget: 100},        // budget below one frame
	}
	for i, c := range cases {
		if _, err := NewEndpoint(c, nil); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, c)
		}
	}
}

// Sequence numbers must survive u16 wraparound: run enough packets
// through a loopback to wrap twice.
func TestLLRSequenceWraparound(t *testing.T) {
	cfg := Config{Window: 32, RetxTimeout: 2, MaxPayload: 4, PayloadBudget: 4096}
	delivered := uint64(0)
	lb := newLoopbackDeliver(t, cfg, nil, func([]byte) { delivered++ })
	const total = 140000 // > 2 * 65536
	sent := 0
	for sent < total || lb.a.Stats().InFlight > 0 || lb.a.Stats().QueueDepth > 0 {
		for k := 0; k < 100 && sent < total; k++ {
			if err := lb.a.Send([]byte{byte(sent)}); err != nil {
				t.Fatal(err)
			}
			sent++
		}
		lb.tick(false, false)
	}
	if delivered != total {
		t.Fatalf("delivered %d, want %d", delivered, total)
	}
	if s := lb.a.Stats(); s.Retransmits != 0 {
		t.Fatalf("clean wraparound run retransmitted: %+v", s)
	}
}
