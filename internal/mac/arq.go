package mac

import "fmt"

// ARQKind names a link-level retransmission discipline.
type ARQKind string

const (
	// ARQGoBackN is the classic cumulative-ack protocol: the receiver
	// holds no reorder buffer, and a head-of-window timeout replays the
	// whole window. Single-VC go-back-N is the legacy v1 wire format.
	ARQGoBackN ARQKind = "gbn"
	// ARQSelectiveRepeat retransmits only unacked frames: the receiver
	// buffers out-of-order frames in a bounded reorder ring and reports
	// them with selective-ack bitmaps, so one lost frame costs one
	// retransmission instead of a whole-window replay.
	ARQSelectiveRepeat ARQKind = "sr"
)

// ARQByName parses a protocol name ("gbn" or "sr"; "" selects go-back-N).
func ARQByName(name string) (ARQKind, error) {
	switch ARQKind(name) {
	case "":
		return ARQGoBackN, nil
	case ARQGoBackN:
		return ARQGoBackN, nil
	case ARQSelectiveRepeat:
		return ARQSelectiveRepeat, nil
	}
	return "", fmt.Errorf("mac: unknown ARQ %q (want gbn or sr)", name)
}

// arq is the retransmission policy plugged into the shared framing and
// credit core: it decides which replay-ring slots refire, how received
// data frames advance the receive state, and what a pure-ack frame
// carries. Implementations are stateless singletons — all protocol state
// lives in the Endpoint's per-VC vcState.
type arq interface {
	kind() ARQKind
	// appendRetx emits vc's due retransmissions into out (within budget).
	appendRetx(e *Endpoint, vc int, out []byte, budget int) []byte
	// onData handles one received data frame addressed to vc.
	onData(e *Endpoint, vc int, f Frame)
	// appendAcks emits vc's pure-ack frame if receive state changed and
	// nothing carried it (within budget).
	appendAcks(e *Endpoint, vc int, out []byte, budget int) []byte
}

// goBackN implements the v1 protocol per virtual channel: whole-window
// replay on head timeout, cumulative acks only, ahead-of-window frames
// discarded at the receiver.
type goBackN struct{}

func (goBackN) kind() ARQKind { return ARQGoBackN }

func (goBackN) appendRetx(e *Endpoint, vc int, out []byte, budget int) []byte {
	v := &e.vcs[vc]
	if v.ringLen == 0 || e.tick-v.ring[v.head].sentTick < uint64(e.cfg.RetxTimeout) {
		return out
	}
	e.stats.Timeouts++
	v.stats.Timeouts++
	for k := 0; k < v.ringLen; k++ {
		slot := &v.ring[(v.head+k)%len(v.ring)]
		if len(out)+e.overhead+len(slot.buf) > budget {
			break
		}
		out = e.appendFrame(out, FlagData|FlagAck, vc, v.base+uint16(k), v.rxExpected, slot.buf)
		slot.sentTick = e.tick
		e.stats.Retransmits++
		v.stats.Retransmits++
		v.txPiggy = true
	}
	return out
}

func (goBackN) onData(e *Endpoint, vc int, f Frame) {
	v := &e.vcs[vc]
	switch d := int16(f.Seq - v.rxExpected); {
	case d == 0:
		e.deliver(vc, f.Payload)
		v.rxExpected++
		v.ackDirty = true
	case d < 0:
		// Already delivered (the ack must have been lost); re-ack.
		e.stats.Duplicates++
		v.stats.Duplicates++
		v.ackDirty = true
	default:
		// A gap: go-back-N receivers hold no reorder buffer, so frames
		// ahead of the expected seq are discarded and re-acked; the
		// sender times out and replays from the gap.
		e.stats.Discarded++
		v.stats.Discarded++
		v.ackDirty = true
	}
}

func (goBackN) appendAcks(e *Endpoint, vc int, out []byte, budget int) []byte {
	v := &e.vcs[vc]
	if v.txPiggy {
		v.ackDirty = false
		return out
	}
	if !v.ackDirty || len(out)+e.overhead > budget {
		return out
	}
	out = e.appendFrame(out, FlagAck, vc, 0, v.rxExpected, nil)
	e.stats.AcksTx++
	v.ackDirty = false
	return out
}

// selectiveRepeat retransmits per slot: a frame refires only when its
// own timer expires and no (selective or cumulative) ack covered it.
// The receiver parks out-of-order frames in a bounded reorder ring and
// advertises them in a SackBytes bitmap on every pure ack, so the sender
// skips frames the receiver already holds.
type selectiveRepeat struct{}

func (selectiveRepeat) kind() ARQKind { return ARQSelectiveRepeat }

func (selectiveRepeat) appendRetx(e *Endpoint, vc int, out []byte, budget int) []byte {
	v := &e.vcs[vc]
	for k := 0; k < v.ringLen; k++ {
		slot := &v.ring[(v.head+k)%len(v.ring)]
		if slot.acked || e.tick-slot.sentTick < uint64(e.cfg.RetxTimeout) {
			continue
		}
		if len(out)+e.overhead+len(slot.buf) > budget {
			break
		}
		out = e.appendFrame(out, FlagData|FlagAck, vc, v.base+uint16(k), v.rxExpected, slot.buf)
		slot.sentTick = e.tick
		// Selective repeat counts one timeout per refired slot (go-back-N
		// counts one per whole-window replay event).
		e.stats.Timeouts++
		v.stats.Timeouts++
		e.stats.Retransmits++
		v.stats.Retransmits++
		v.txPiggy = true
	}
	return out
}

func (selectiveRepeat) onData(e *Endpoint, vc int, f Frame) {
	v := &e.vcs[vc]
	r := len(v.reorder)
	switch d := int(int16(f.Seq - v.rxExpected)); {
	case d == 0:
		e.deliver(vc, f.Payload)
		v.rxExpected++
		v.rhead = (v.rhead + 1) % r
		// Drain contiguously buffered frames behind the filled gap.
		for v.rcount > 0 && v.reorder[v.rhead].full {
			slot := &v.reorder[v.rhead]
			slot.full = false
			v.rcount--
			e.deliver(vc, slot.buf)
			v.rxExpected++
			v.rhead = (v.rhead + 1) % r
		}
		v.ackDirty = true
	case d < 0:
		e.stats.Duplicates++
		v.stats.Duplicates++
		v.ackDirty = true
	case d < r:
		// Within the reorder window: park a copy for later drain.
		slot := &v.reorder[(v.rhead+d)%r]
		if slot.full {
			e.stats.Duplicates++
			v.stats.Duplicates++
		} else {
			slot.buf = append(slot.buf[:0], f.Payload...)
			slot.full = true
			v.rcount++
			e.stats.Reordered++
			v.stats.Reordered++
		}
		v.ackDirty = true
	default:
		// Beyond the bounded reorder buffer: drop; the sender's per-slot
		// timer will refire it once the window has advanced.
		e.stats.Discarded++
		v.stats.Discarded++
		v.ackDirty = true
	}
}

func (selectiveRepeat) appendAcks(e *Endpoint, vc int, out []byte, budget int) []byte {
	v := &e.vcs[vc]
	// Data piggybacks carry only the cumulative ack; the sack bitmap
	// rides exclusively on pure acks, so receive-state changes always
	// produce one (txPiggy does not clear ackDirty in SR mode).
	if !v.ackDirty || len(out)+e.overhead+SackBytes > budget {
		return out
	}
	for i := range v.sack {
		v.sack[i] = 0
	}
	r := len(v.reorder)
	for d := 1; d <= 8*SackBytes && d < r; d++ {
		if v.reorder[(v.rhead+d)%r].full {
			k := d - 1 // bit k covers seq rxExpected+1+k
			v.sack[k>>3] |= 1 << (k & 7)
		}
	}
	out = e.appendFrame(out, FlagAck|FlagSack, vc, 0, v.rxExpected, v.sack[:])
	e.stats.AcksTx++
	v.ackDirty = false
	return out
}

// arqFor returns the stateless policy singleton for a kind.
func arqFor(kind ARQKind) arq {
	if kind == ARQSelectiveRepeat {
		return selectiveRepeat{}
	}
	return goBackN{}
}
