package mac

import (
	"bytes"
	"math/rand"
	"testing"
)

// collect runs the deframer over buf and returns deep copies of the
// emitted frames (payloads alias buf, so tests that mutate buf copy).
func collect(t *testing.T, d *Deframer, buf []byte) []Frame {
	t.Helper()
	var out []Frame
	d.Deframe(buf, func(f Frame) {
		f.Payload = append([]byte(nil), f.Payload...)
		out = append(out, f)
	})
	return out
}

func TestFrameRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var buf []byte
	type sent struct {
		flags    byte
		seq, ack uint16
		payload  []byte
	}
	var want []sent
	for i := 0; i < 20; i++ {
		p := make([]byte, rng.Intn(300))
		rng.Read(p)
		s := sent{FlagData | FlagAck, uint16(i), uint16(1000 + i), p}
		want = append(want, s)
		buf = AppendFrame(buf, s.flags, s.seq, s.ack, s.payload)
		// Random idle fill between frames.
		for j := rng.Intn(10); j > 0; j-- {
			buf = append(buf, IdleByte)
		}
	}

	var d Deframer
	got := collect(t, &d, buf)
	if len(got) != len(want) {
		t.Fatalf("deframed %d frames, want %d", len(got), len(want))
	}
	for i, f := range got {
		w := want[i]
		if f.Flags != w.flags || f.Seq != w.seq || f.Ack != w.ack || !bytes.Equal(f.Payload, w.payload) {
			t.Fatalf("frame %d mismatch: got {%x %d %d %dB}", i, f.Flags, f.Seq, f.Ack, len(f.Payload))
		}
	}
	if d.Stats.CRCRejects != 0 || d.Stats.SkippedBytes != 0 {
		t.Fatalf("clean stream produced rejects: %+v", d.Stats)
	}
}

func TestDeframeEmptyPayload(t *testing.T) {
	buf := AppendFrame(nil, FlagAck, 0, 7, nil)
	var d Deframer
	got := collect(t, &d, buf)
	if len(got) != 1 || got[0].Ack != 7 || len(got[0].Payload) != 0 {
		t.Fatalf("pure ack did not round-trip: %+v", got)
	}
}

// A bit flip anywhere in one frame must reject exactly that frame and
// recover every later one.
func TestDeframeResyncsAfterCorruption(t *testing.T) {
	payload := []byte("hello mosaic")
	var buf []byte
	for i := 0; i < 5; i++ {
		buf = AppendFrame(buf, FlagData, uint16(i), 0, payload)
	}
	frameLen := Overhead + len(payload)

	for off := 0; off < frameLen; off++ {
		mut := append([]byte(nil), buf...)
		mut[2*frameLen+off] ^= 0xFF // corrupt frame 2
		var d Deframer
		got := collect(t, &d, mut)
		if len(got) < 4 {
			t.Fatalf("offset %d: recovered %d frames, want >= 4", off, len(got))
		}
		// Frames 0, 1, 3, 4 must always survive in order.
		seqs := map[uint16]bool{}
		for _, f := range got {
			seqs[f.Seq] = true
		}
		for _, s := range []uint16{0, 1, 3, 4} {
			if !seqs[s] {
				t.Fatalf("offset %d: frame seq=%d lost; stats %+v", off, s, d.Stats)
			}
		}
	}
}

// Removing a chunk from the middle (a lost PHY frame splicing the
// stream) must still recover the frames on both sides of the cut.
func TestDeframeResyncsAfterSplice(t *testing.T) {
	payload := make([]byte, 100)
	rand.New(rand.NewSource(2)).Read(payload)
	var buf []byte
	for i := 0; i < 6; i++ {
		buf = AppendFrame(buf, FlagData, uint16(i), 0, payload)
	}
	// Cut 150 bytes straddling frames 2 and 3.
	cutAt := 2*(Overhead+100) + 50
	spliced := append(append([]byte(nil), buf[:cutAt]...), buf[cutAt+150:]...)

	var d Deframer
	got := collect(t, &d, spliced)
	seqs := map[uint16]bool{}
	for _, f := range got {
		seqs[f.Seq] = true
	}
	for _, s := range []uint16{0, 1, 4, 5} {
		if !seqs[s] {
			t.Fatalf("frame seq=%d lost after splice; got %v, stats %+v", s, seqs, d.Stats)
		}
	}
	if seqs[2] || seqs[3] {
		t.Fatalf("frames inside the cut were 'recovered': %v", seqs)
	}
}

func TestDeframeHeaderReject(t *testing.T) {
	// Valid magic, absurd length: must be header-rejected, and the valid
	// frame after it must still decode.
	buf := []byte{Magic0, Magic1, 0, 0, 0, 0, 0, 0xFF, 0xFF}
	buf = append(buf, make([]byte, 8)...)
	buf = AppendFrame(buf, FlagData, 42, 0, []byte("ok"))
	var d Deframer
	got := collect(t, &d, buf)
	if len(got) != 1 || got[0].Seq != 42 {
		t.Fatalf("got %+v, want the one valid frame", got)
	}
	if d.Stats.HeaderRejects == 0 {
		t.Fatalf("expected a header reject: %+v", d.Stats)
	}
}

func TestDeframeTruncatedTail(t *testing.T) {
	buf := AppendFrame(nil, FlagData, 1, 0, []byte("full frame"))
	whole := AppendFrame(nil, FlagData, 2, 0, []byte("cut off"))
	buf = append(buf, whole[:len(whole)-3]...) // drop last 3 bytes
	var d Deframer
	got := collect(t, &d, buf)
	if len(got) != 1 || got[0].Seq != 1 {
		t.Fatalf("got %+v, want only the complete frame", got)
	}
}

func TestDeframeIdleOnly(t *testing.T) {
	var d Deframer
	got := collect(t, &d, make([]byte, 500))
	if len(got) != 0 {
		t.Fatalf("idle fill produced frames: %+v", got)
	}
	if d.Stats.IdleBytes != 500 {
		t.Fatalf("idle bytes = %d, want 500", d.Stats.IdleBytes)
	}
}
