package mac

import "fmt"

// LLR defaults; see Config.
const (
	DefaultWindow      = 64
	DefaultRetxTimeout = 3
)

// Config parameterizes one LLR endpoint.
type Config struct {
	// Window is the per-VC send window: each virtual channel's replay
	// ring holds at most this many unacked frames (0 = DefaultWindow).
	// When a VC's ring is full, its sends stall (counted as credit
	// stalls) until acks drain it.
	Window int

	// RetxTimeout is how many superframes an unacked frame waits before
	// retransmission — the whole window under go-back-N, the individual
	// frame under selective repeat (0 = DefaultRetxTimeout).
	RetxTimeout int

	// MaxPayload bounds a single packet's size (0 = DefaultMaxPayload).
	MaxPayload int

	// PayloadBudget is the exact superframe payload size in bytes that
	// BuildSuperframe produces, idle-filled when there is nothing to
	// send. Required; must hold at least one max-size frame.
	PayloadBudget int

	// ARQ selects the retransmission discipline ("" = ARQGoBackN).
	ARQ ARQKind

	// VCs is the number of virtual channels (0 = 1). Each VC has its own
	// send queue, credit window, and sequence/ack space. A single-VC
	// go-back-N endpoint speaks the legacy v1 wire format; every other
	// mode uses frame header v2 (with its VC byte) for all frames.
	VCs int

	// VCClass assigns each VC a QoS class in [0, NumClasses) — 0 is
	// highest priority. nil means all VCs are class 0; otherwise the
	// length must equal VCs. Classes share superframe budget by
	// deterministic weighted round-robin (see buildServiceOrder).
	VCClass []uint8

	// ReorderWindow is the per-VC receive reorder-ring depth used by
	// selective repeat (0 = Window). Frames further than this ahead of
	// the next expected seq are discarded, not buffered.
	ReorderWindow int
}

func (c *Config) withDefaults() (Config, error) {
	out := *c
	if out.Window <= 0 {
		out.Window = DefaultWindow
	}
	if out.RetxTimeout <= 0 {
		out.RetxTimeout = DefaultRetxTimeout
	}
	if out.MaxPayload <= 0 {
		out.MaxPayload = DefaultMaxPayload
	}
	if out.ARQ == "" {
		out.ARQ = ARQGoBackN
	}
	if out.VCs == 0 {
		out.VCs = 1
	}
	if out.VCClass == nil && out.VCs > 0 {
		out.VCClass = make([]uint8, out.VCs)
	}
	if out.ReorderWindow == 0 {
		out.ReorderWindow = out.Window
	}
	if err := out.Validate(); err != nil {
		return out, err
	}
	return out, nil
}

// wireOverhead is the per-frame overhead of the wire version a config
// speaks: v1 for legacy single-VC go-back-N, v2 everywhere else.
func (c Config) wireOverhead() int {
	if c.VCs > 1 || c.ARQ == ARQSelectiveRepeat {
		return OverheadV2
	}
	return Overhead
}

// Validate checks a fully-specified config (zero values are NOT
// defaulted here; NewEndpoint applies defaults first). It enforces the
// int16 wraparound bound on both window depths, the u16 length-field
// bound on payloads, header capacity on the VC count, and that the
// superframe budget can hold at least one max-size frame of the wire
// version the config speaks.
func (c Config) Validate() error {
	if c.Window < 1 || c.Window > 1<<14 {
		// seq arithmetic uses int16 wraparound distance; keep the window
		// far below half the sequence space.
		return fmt.Errorf("mac: Window %d outside [1, %d]", c.Window, 1<<14)
	}
	if c.RetxTimeout < 1 {
		return fmt.Errorf("mac: RetxTimeout %d < 1", c.RetxTimeout)
	}
	if c.MaxPayload < 1 || c.MaxPayload > 1<<16-1 {
		return fmt.Errorf("mac: MaxPayload %d outside u16 length field", c.MaxPayload)
	}
	if c.VCs < 1 || c.VCs > MaxVCs {
		return fmt.Errorf("mac: VC count %d outside [1, %d] (one-byte VC field)", c.VCs, MaxVCs)
	}
	if len(c.VCClass) != c.VCs {
		return fmt.Errorf("mac: VCClass length %d != VCs %d", len(c.VCClass), c.VCs)
	}
	for vc, class := range c.VCClass {
		if int(class) >= NumClasses {
			return fmt.Errorf("mac: VC %d class %d outside [0, %d)", vc, class, NumClasses)
		}
	}
	if c.ARQ != ARQGoBackN && c.ARQ != ARQSelectiveRepeat {
		return fmt.Errorf("mac: unknown ARQ %q", c.ARQ)
	}
	if c.ReorderWindow < 1 || c.ReorderWindow > 1<<14 {
		return fmt.Errorf("mac: ReorderWindow %d outside [1, %d]", c.ReorderWindow, 1<<14)
	}
	if c.ARQ == ARQSelectiveRepeat && c.MaxPayload < SackBytes {
		return fmt.Errorf("mac: MaxPayload %d cannot carry a %d-byte sack bitmap", c.MaxPayload, SackBytes)
	}
	if c.PayloadBudget < c.MaxPayload+c.wireOverhead() {
		return fmt.Errorf("mac: PayloadBudget %d cannot hold one max frame (%d)",
			c.PayloadBudget, c.MaxPayload+c.wireOverhead())
	}
	return nil
}

// Stats is the endpoint's cumulative view, aggregated across all virtual
// channels. Counters only grow; InFlight/QueueDepth/ReorderDepth are
// point-in-time gauges. Per-VC breakdowns come from VCSnapshot.
type Stats struct {
	PacketsQueued uint64 // Send/SendVC calls accepted
	DataTx        uint64 // data frames emitted (first transmissions)
	Retransmits   uint64 // data frames re-emitted by the ARQ
	AcksTx        uint64 // pure-ack frames emitted (piggybacks not counted)
	DataRx        uint64 // data frames received intact
	Delivered     uint64 // packets delivered in order to the client
	Duplicates    uint64 // already-delivered or already-buffered seqs discarded
	Discarded     uint64 // ahead-of-window seqs dropped (no reorder room)
	Reordered     uint64 // out-of-order seqs parked in the SR reorder buffer
	AcksRx        uint64 // frames carrying an ack field that advanced or held
	SacksRx       uint64 // selective-ack bitmaps processed
	UnknownVC     uint64 // frames addressed to a VC this endpoint lacks
	CreditStalls  uint64 // superframes where queued data waited on a full window
	Timeouts      uint64 // retransmit timeouts fired

	InFlight     int // unacked frames across all replay rings
	QueueDepth   int // packets waiting to enter a window
	ReorderDepth int // frames parked in SR reorder buffers

	Deframe DeframeStats // receive-side scanner counters
}

// VCStats is one virtual channel's view of the same counters.
type VCStats struct {
	Class uint8

	PacketsQueued uint64
	DataTx        uint64
	Retransmits   uint64
	Delivered     uint64
	Duplicates    uint64
	Discarded     uint64
	Reordered     uint64
	CreditStalls  uint64
	Timeouts      uint64

	InFlight     int
	QueueDepth   int
	ReorderDepth int
}

// txSlot is one replay-ring entry: an unacked payload copy, the
// superframe tick it was last (re)transmitted at, and — under selective
// repeat — whether a sack bitmap already covered it (skip on retx; the
// slot is only released by the cumulative ack).
type txSlot struct {
	buf      []byte
	sentTick uint64
	acked    bool
}

// rxSlot is one reorder-ring entry on the SR receive side: a buffered
// out-of-order payload waiting for the gap before it to fill.
type rxSlot struct {
	buf  []byte
	full bool
}

// vcState is all per-virtual-channel protocol state. The ARQ policy and
// the framing core operate on these; the Endpoint owns the slice.
type vcState struct {
	class uint8

	// Transmit side.
	queue   [][]byte // packets waiting for window credit (owned copies)
	freeBuf [][]byte // retired packet buffers, reused by SendVC
	ring    []txSlot // replay ring; slot k holds seq base+k
	head    int      // ring index of seq `base`
	ringLen int      // occupied slots
	base    uint16   // oldest unacked sequence number
	nextSeq uint16   // next fresh sequence number (= base+ringLen)
	txPiggy bool     // a data frame piggybacked this VC's ack this tick

	// Receive side.
	rxExpected uint16 // next in-order sequence number
	ackDirty   bool   // rx state changed since the last ack we sent

	// Selective-repeat receive side: reorder[(rhead+d)%len] buffers seq
	// rxExpected+d. nil under go-back-N.
	reorder []rxSlot
	rhead   int
	rcount  int
	sack    [SackBytes]byte // bitmap scratch, rebuilt per pure ack

	stats VCStats
}

// Endpoint is one side of an LLR link: per-VC send queues and credit
// windows over a shared framing core, with the retransmission discipline
// delegated to an ARQ policy. It is single-goroutine like the rest of
// the simulator: the harness alternates BuildSuperframe (tx) and Accept
// (rx) once per superframe. All buffers are reused across ticks — the
// steady-state hot path performs no allocations.
type Endpoint struct {
	cfg      Config
	arq      arq
	v2       bool // frame header v2 on the wire (any non-legacy mode)
	overhead int  // per-frame overhead of the active wire version

	vcs    []vcState
	order  []int // precomputed WRR service sequence over VC indices
	cursor int   // position in order, persists across superframes

	txBuf []byte // superframe payload under construction
	rxBuf []byte // concatenated PHY payloads for the deframer

	deframer    Deframer
	emit        func(Frame) // bound handleFrame, constructed once
	onDeliver   func([]byte)
	onDeliverVC func(vc int, payload []byte)

	tick  uint64
	stats Stats
}

// NewEndpoint builds an endpoint. onDeliver receives each in-order
// packet payload exactly once (regardless of VC); the slice aliases
// internal buffers and must not be retained. onDeliver may be nil
// (delivery still counted).
func NewEndpoint(cfg Config, onDeliver func([]byte)) (*Endpoint, error) {
	e, err := newEndpoint(cfg)
	if err != nil {
		return nil, err
	}
	e.onDeliver = onDeliver
	return e, nil
}

// NewEndpointVC builds an endpoint with a VC-aware delivery callback:
// onDeliverVC receives each in-order payload once, tagged with the
// virtual channel it arrived on. The payload aliasing rules match
// NewEndpoint.
func NewEndpointVC(cfg Config, onDeliverVC func(vc int, payload []byte)) (*Endpoint, error) {
	e, err := newEndpoint(cfg)
	if err != nil {
		return nil, err
	}
	e.onDeliverVC = onDeliverVC
	return e, nil
}

func newEndpoint(cfg Config) (*Endpoint, error) {
	full, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	e := &Endpoint{
		cfg:      full,
		arq:      arqFor(full.ARQ),
		v2:       full.wireOverhead() == OverheadV2,
		overhead: full.wireOverhead(),
		vcs:      make([]vcState, full.VCs),
		order:    buildServiceOrder(full.VCClass),
		txBuf:    make([]byte, 0, full.PayloadBudget),
	}
	for i := range e.vcs {
		v := &e.vcs[i]
		v.class = full.VCClass[i]
		v.stats.Class = v.class
		v.ring = make([]txSlot, full.Window)
		if full.ARQ == ARQSelectiveRepeat {
			v.reorder = make([]rxSlot, full.ReorderWindow)
		}
	}
	e.deframer.MaxPayload = full.MaxPayload
	e.emit = e.handleFrame
	return e, nil
}

// Send queues one packet on VC 0 for reliable delivery. The payload is
// copied.
func (e *Endpoint) Send(payload []byte) error { return e.SendVC(0, payload) }

// SendVC queues one packet on the given virtual channel. The payload is
// copied.
func (e *Endpoint) SendVC(vc int, payload []byte) error {
	if vc < 0 || vc >= len(e.vcs) {
		return fmt.Errorf("mac: VC %d outside [0, %d)", vc, len(e.vcs))
	}
	if len(payload) > e.cfg.MaxPayload {
		return fmt.Errorf("mac: packet %dB exceeds MaxPayload %d", len(payload), e.cfg.MaxPayload)
	}
	v := &e.vcs[vc]
	var buf []byte
	if n := len(v.freeBuf); n > 0 {
		buf = v.freeBuf[n-1][:0]
		v.freeBuf = v.freeBuf[:n-1]
	}
	v.queue = append(v.queue, append(buf, payload...))
	e.stats.PacketsQueued++
	v.stats.PacketsQueued++
	return nil
}

// idlePad is the shared idle-fill source; appended in chunks so filling
// a mostly-empty superframe is a few copies, not a byte loop.
var idlePad [256]byte

// BuildSuperframe advances the endpoint one superframe tick and returns
// the payload to hand to the PHY. Frame order is deterministic:
// retransmissions first (per VC in index order, slots chosen by the ARQ
// policy), then fresh data in weighted round-robin order across VCs —
// one frame per service slot while window credit and budget allow —
// then per-VC pure acks where receive state changed and no data frame
// carried it, then idle fill to exactly PayloadBudget bytes. The
// returned slice is reused by the next call.
func (e *Endpoint) BuildSuperframe() []byte {
	e.tick++
	out := e.txBuf[:0]
	budget := e.cfg.PayloadBudget
	for i := range e.vcs {
		e.vcs[i].txPiggy = false
	}

	for vc := range e.vcs {
		out = e.arq.appendRetx(e, vc, out, budget)
	}

	// Fresh data: walk the precomputed WRR sequence (cursor persists
	// across superframes for long-run fairness) until one full cycle
	// makes no progress — every VC is idle, stalled, or out of budget.
	idle := 0
	for idle < len(e.order) {
		vc := e.order[e.cursor]
		e.cursor++
		if e.cursor == len(e.order) {
			e.cursor = 0
		}
		if e.emitFresh(vc, &out, budget) {
			idle = 0
		} else {
			idle++
		}
	}
	for i := range e.vcs {
		v := &e.vcs[i]
		if len(v.queue) > 0 && v.ringLen == len(v.ring) {
			e.stats.CreditStalls++
			v.stats.CreditStalls++
		}
	}

	for vc := range e.vcs {
		out = e.arq.appendAcks(e, vc, out, budget)
	}

	// Idle fill to the fixed budget.
	for len(out) < budget {
		n := budget - len(out)
		if n > len(idlePad) {
			n = len(idlePad)
		}
		out = append(out, idlePad[:n]...)
	}

	e.syncGauges()
	e.txBuf = out
	return out
}

// emitFresh tries to emit one fresh data frame from vc's queue: false
// when the queue is empty, the window is out of credit, or the frame
// would overflow the superframe budget.
func (e *Endpoint) emitFresh(vc int, out *[]byte, budget int) bool {
	v := &e.vcs[vc]
	if len(v.queue) == 0 || v.ringLen == len(v.ring) {
		return false
	}
	p := v.queue[0]
	if len(*out)+e.overhead+len(p) > budget {
		return false
	}
	slot := &v.ring[(v.head+v.ringLen)%len(v.ring)]
	slot.buf = append(slot.buf[:0], p...)
	slot.sentTick = e.tick
	slot.acked = false
	v.ringLen++
	*out = e.appendFrame(*out, FlagData|FlagAck, vc, v.nextSeq, v.rxExpected, slot.buf)
	v.nextSeq++
	e.stats.DataTx++
	v.stats.DataTx++
	v.txPiggy = true
	v.freeBuf = append(v.freeBuf, p)
	copy(v.queue, v.queue[1:])
	v.queue = v.queue[:len(v.queue)-1]
	return true
}

// appendFrame encodes one frame in the endpoint's wire version.
func (e *Endpoint) appendFrame(out []byte, flags byte, vc int, seq, ack uint16, payload []byte) []byte {
	if e.v2 {
		return AppendFrameVC(out, flags, byte(vc), seq, ack, payload)
	}
	return AppendFrame(out, flags, seq, ack, payload)
}

// Accept ingests the PHY-delivered chunks of the peer's superframe (in
// order; corrupted or lost chunks simply absent) and runs the deframer
// over the concatenation. Valid frames update ack state and deliver
// in-order payloads.
func (e *Endpoint) Accept(chunks [][]byte) {
	rx := e.rxBuf[:0]
	for _, c := range chunks {
		rx = append(rx, c...)
	}
	e.rxBuf = rx
	e.deframer.Deframe(rx, e.emit)
	e.stats.Deframe = e.deframer.Stats
	e.syncGauges()
}

func (e *Endpoint) handleFrame(f Frame) {
	vc := 0
	if f.Flags&FlagV2 != 0 {
		vc = int(f.VC)
		if vc >= len(e.vcs) {
			e.stats.UnknownVC++
			return
		}
	}
	v := &e.vcs[vc]
	if f.Flags&FlagAck != 0 {
		if f.Flags&FlagSack != 0 && f.Flags&FlagData == 0 && len(f.Payload) >= SackBytes {
			e.handleSack(v, f.Ack, f.Payload)
		} else {
			e.handleAck(v, f.Ack)
		}
	}
	if f.Flags&FlagData == 0 {
		return
	}
	e.stats.DataRx++
	e.arq.onData(e, vc, f)
}

// deliver hands one in-order payload to the client callbacks.
func (e *Endpoint) deliver(vc int, payload []byte) {
	e.stats.Delivered++
	e.vcs[vc].stats.Delivered++
	if e.onDeliver != nil {
		e.onDeliver(payload)
	}
	if e.onDeliverVC != nil {
		e.onDeliverVC(vc, payload)
	}
}

// handleAck applies a cumulative ack to one VC: the peer's next expected
// sequence number releases every replay slot strictly before it. Stale
// or implausible acks (outside the in-flight range — possible only via
// an undetected CRC collision) are ignored.
func (e *Endpoint) handleAck(v *vcState, ack uint16) {
	adv := int(int16(ack - v.base))
	if adv < 0 || adv > v.ringLen {
		return
	}
	e.stats.AcksRx++
	v.head = (v.head + adv) % len(v.ring)
	v.ringLen -= adv
	v.base = ack
}

// handleSack applies a selective-ack frame: the cumulative ack first
// (releasing the contiguous prefix), then every set bitmap bit marks its
// in-flight slot acked so selective repeat skips it on retransmit. Bits
// outside the current in-flight range are ignored; a receiver only sets
// a bit for a frame it holds, so marking is safe even from a stale
// bitmap.
func (e *Endpoint) handleSack(v *vcState, ack uint16, bm []byte) {
	e.handleAck(v, ack)
	e.stats.SacksRx++
	for k := 0; k < 8*SackBytes; k++ {
		if bm[k>>3]&(1<<(k&7)) == 0 {
			continue
		}
		// Bit k covers seq ack+1+k; locate it relative to our base.
		d := int(int16(ack + 1 + uint16(k) - v.base))
		if d < 0 || d >= v.ringLen {
			continue
		}
		v.ring[(v.head+d)%len(v.ring)].acked = true
	}
}

// syncGauges recomputes the aggregate and per-VC occupancy gauges.
func (e *Endpoint) syncGauges() {
	inFlight, depth, rdepth := 0, 0, 0
	for i := range e.vcs {
		v := &e.vcs[i]
		inFlight += v.ringLen
		depth += len(v.queue)
		rdepth += v.rcount
		v.stats.InFlight = v.ringLen
		v.stats.QueueDepth = len(v.queue)
		v.stats.ReorderDepth = v.rcount
	}
	e.stats.InFlight = inFlight
	e.stats.QueueDepth = depth
	e.stats.ReorderDepth = rdepth
}

// Stats returns a snapshot of the endpoint's aggregate counters and
// gauges.
func (e *Endpoint) Stats() Stats {
	e.syncGauges()
	s := e.stats
	s.Deframe = e.deframer.Stats
	return s
}

// NumVCs returns the number of virtual channels.
func (e *Endpoint) NumVCs() int { return len(e.vcs) }

// VCSnapshot returns one virtual channel's counters and gauges.
func (e *Endpoint) VCSnapshot(vc int) VCStats {
	v := &e.vcs[vc]
	s := v.stats
	s.InFlight = v.ringLen
	s.QueueDepth = len(v.queue)
	s.ReorderDepth = v.rcount
	return s
}
