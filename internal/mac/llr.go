package mac

import "fmt"

// LLR defaults; see Config.
const (
	DefaultWindow      = 64
	DefaultRetxTimeout = 3
)

// Config parameterizes one LLR endpoint.
type Config struct {
	// Window is the go-back-N window: the replay ring holds at most this
	// many unacked frames (0 = DefaultWindow). When the ring is full,
	// new sends stall (counted as credit stalls) until acks drain it.
	Window int

	// RetxTimeout is how many superframes an unacked frame waits before
	// the whole window is retransmitted (0 = DefaultRetxTimeout).
	RetxTimeout int

	// MaxPayload bounds a single packet's size (0 = DefaultMaxPayload).
	MaxPayload int

	// PayloadBudget is the exact superframe payload size in bytes that
	// BuildSuperframe produces, idle-filled when there is nothing to
	// send. Required; must hold at least one max-size frame.
	PayloadBudget int
}

func (c *Config) withDefaults() (Config, error) {
	out := *c
	if out.Window <= 0 {
		out.Window = DefaultWindow
	}
	if out.Window > 1<<14 {
		// seq arithmetic uses int16 wraparound distance; keep the window
		// far below half the sequence space.
		return out, fmt.Errorf("mac: Window %d exceeds 1<<14", out.Window)
	}
	if out.RetxTimeout <= 0 {
		out.RetxTimeout = DefaultRetxTimeout
	}
	if out.MaxPayload <= 0 {
		out.MaxPayload = DefaultMaxPayload
	}
	if out.MaxPayload > 1<<16-1 {
		return out, fmt.Errorf("mac: MaxPayload %d exceeds u16 length field", out.MaxPayload)
	}
	if out.PayloadBudget < out.MaxPayload+Overhead {
		return out, fmt.Errorf("mac: PayloadBudget %d cannot hold one max frame (%d)",
			out.PayloadBudget, out.MaxPayload+Overhead)
	}
	return out, nil
}

// Stats is the endpoint's cumulative view. Counters only grow;
// InFlight/QueueDepth are point-in-time gauges.
type Stats struct {
	PacketsQueued uint64 // Send calls accepted
	DataTx        uint64 // data frames emitted (first transmissions)
	Retransmits   uint64 // data frames re-emitted by go-back-N
	AcksTx        uint64 // pure-ack frames emitted (piggybacks not counted)
	DataRx        uint64 // data frames received intact
	Delivered     uint64 // packets delivered in order to the client
	Duplicates    uint64 // already-delivered seqs discarded
	OutOfOrder    uint64 // ahead-of-window seqs discarded (go-back-N)
	AcksRx        uint64 // frames carrying an ack field that advanced or held
	CreditStalls  uint64 // superframes where queued data waited on a full window
	Timeouts      uint64 // retransmit timeouts fired

	InFlight   int // unacked frames in the replay ring
	QueueDepth int // packets waiting to enter the window

	Deframe DeframeStats // receive-side scanner counters
}

// txSlot is one replay-ring entry: an unacked payload copy plus the
// superframe tick it was last (re)transmitted at.
type txSlot struct {
	buf      []byte
	sentTick uint64
}

// Endpoint is one side of an LLR link. It is single-goroutine like the
// rest of the simulator: the harness alternates BuildSuperframe (tx) and
// Accept (rx) once per superframe. All buffers are reused across ticks —
// the steady-state hot path performs no allocations.
type Endpoint struct {
	cfg Config

	// Transmit side.
	queue   [][]byte // packets waiting for window credit (owned copies)
	freeBuf [][]byte // retired packet buffers, reused by Send
	ring    []txSlot // replay ring; slot k holds seq base+k
	head    int      // ring index of seq `base`
	ringLen int      // occupied slots
	base    uint16   // oldest unacked sequence number
	nextSeq uint16   // next fresh sequence number (= base+ringLen)
	txBuf   []byte   // superframe payload under construction

	// Receive side.
	rxBuf      []byte // concatenated PHY payloads for the deframer
	rxExpected uint16 // next in-order sequence number
	ackDirty   bool   // rx state changed since the last ack we sent
	deframer   Deframer
	emit       func(Frame) // bound handleFrame, constructed once
	onDeliver  func([]byte)

	tick  uint64
	stats Stats
}

// NewEndpoint builds an endpoint. onDeliver receives each in-order
// packet payload exactly once; the slice aliases internal buffers and
// must not be retained. onDeliver may be nil (delivery still counted).
func NewEndpoint(cfg Config, onDeliver func([]byte)) (*Endpoint, error) {
	full, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	e := &Endpoint{
		cfg:       full,
		ring:      make([]txSlot, full.Window),
		txBuf:     make([]byte, 0, full.PayloadBudget),
		onDeliver: onDeliver,
	}
	e.deframer.MaxPayload = full.MaxPayload
	e.emit = e.handleFrame
	return e, nil
}

// Send queues one packet for reliable delivery. The payload is copied.
func (e *Endpoint) Send(payload []byte) error {
	if len(payload) > e.cfg.MaxPayload {
		return fmt.Errorf("mac: packet %dB exceeds MaxPayload %d", len(payload), e.cfg.MaxPayload)
	}
	var buf []byte
	if n := len(e.freeBuf); n > 0 {
		buf = e.freeBuf[n-1][:0]
		e.freeBuf = e.freeBuf[:n-1]
	}
	e.queue = append(e.queue, append(buf, payload...))
	e.stats.PacketsQueued++
	return nil
}

// idlePad is the shared idle-fill source; appended in chunks so filling
// a mostly-empty superframe is a few copies, not a byte loop.
var idlePad [256]byte

// BuildSuperframe advances the endpoint one superframe tick and returns
// the payload to hand to the PHY: retransmissions first (if the oldest
// unacked frame timed out, the whole window resends — go-back-N), then
// fresh data while window credit and budget allow, then a pure-ack frame
// if receive state changed and no data frame carried it, then idle fill
// to exactly PayloadBudget bytes. The returned slice is reused by the
// next call.
func (e *Endpoint) BuildSuperframe() []byte {
	e.tick++
	out := e.txBuf[:0]
	budget := e.cfg.PayloadBudget
	ackSent := false

	// Go-back-N retransmission: when the oldest in-flight frame has
	// waited RetxTimeout ticks, resend the window in order (as much as
	// fits this superframe; the rest ages and refires).
	if e.ringLen > 0 &&
		e.tick-e.ring[e.head].sentTick >= uint64(e.cfg.RetxTimeout) {
		e.stats.Timeouts++
		for k := 0; k < e.ringLen; k++ {
			slot := &e.ring[(e.head+k)%len(e.ring)]
			if len(out)+Overhead+len(slot.buf) > budget {
				break
			}
			out = AppendFrame(out, FlagData|FlagAck, e.base+uint16(k), e.rxExpected, slot.buf)
			slot.sentTick = e.tick
			e.stats.Retransmits++
			ackSent = true
		}
	}

	// Fresh data while the window and the budget have room.
	for len(e.queue) > 0 && e.ringLen < len(e.ring) {
		p := e.queue[0]
		if len(out)+Overhead+len(p) > budget {
			break
		}
		slot := &e.ring[(e.head+e.ringLen)%len(e.ring)]
		slot.buf = append(slot.buf[:0], p...)
		slot.sentTick = e.tick
		e.ringLen++
		out = AppendFrame(out, FlagData|FlagAck, e.nextSeq, e.rxExpected, slot.buf)
		e.nextSeq++
		e.stats.DataTx++
		ackSent = true
		e.freeBuf = append(e.freeBuf, p)
		copy(e.queue, e.queue[1:])
		e.queue = e.queue[:len(e.queue)-1]
	}
	if len(e.queue) > 0 && e.ringLen == len(e.ring) {
		e.stats.CreditStalls++
	}

	// Pure ack when rx state moved and nothing piggybacked it.
	if e.ackDirty && !ackSent {
		out = AppendFrame(out, FlagAck, 0, e.rxExpected, nil)
		e.stats.AcksTx++
		ackSent = true
	}
	if ackSent {
		e.ackDirty = false
	}

	// Idle fill to the fixed budget.
	for len(out) < budget {
		n := budget - len(out)
		if n > len(idlePad) {
			n = len(idlePad)
		}
		out = append(out, idlePad[:n]...)
	}

	e.stats.InFlight = e.ringLen
	e.stats.QueueDepth = len(e.queue)
	e.txBuf = out
	return out
}

// Accept ingests the PHY-delivered chunks of the peer's superframe (in
// order; corrupted or lost chunks simply absent) and runs the deframer
// over the concatenation. Valid frames update ack state and deliver
// in-order payloads.
func (e *Endpoint) Accept(chunks [][]byte) {
	rx := e.rxBuf[:0]
	for _, c := range chunks {
		rx = append(rx, c...)
	}
	e.rxBuf = rx
	e.deframer.Deframe(rx, e.emit)
	e.stats.Deframe = e.deframer.Stats
	e.stats.InFlight = e.ringLen
	e.stats.QueueDepth = len(e.queue)
}

func (e *Endpoint) handleFrame(f Frame) {
	if f.Flags&FlagAck != 0 {
		e.handleAck(f.Ack)
	}
	if f.Flags&FlagData == 0 {
		return
	}
	e.stats.DataRx++
	switch d := int16(f.Seq - e.rxExpected); {
	case d == 0:
		e.stats.Delivered++
		if e.onDeliver != nil {
			e.onDeliver(f.Payload)
		}
		e.rxExpected++
		e.ackDirty = true
	case d < 0:
		// Already delivered (the ack must have been lost); re-ack.
		e.stats.Duplicates++
		e.ackDirty = true
	default:
		// A gap: go-back-N receivers hold no reorder buffer, so frames
		// ahead of the expected seq are dropped and re-acked; the sender
		// times out and replays from the gap.
		e.stats.OutOfOrder++
		e.ackDirty = true
	}
}

// handleAck applies a cumulative ack: the peer's next expected sequence
// number releases every replay slot strictly before it. Stale or
// implausible acks (outside the in-flight range — possible only via
// an undetected CRC collision) are ignored.
func (e *Endpoint) handleAck(ack uint16) {
	adv := int(int16(ack - e.base))
	if adv < 0 || adv > e.ringLen {
		return
	}
	e.stats.AcksRx++
	e.head = (e.head + adv) % len(e.ring)
	e.ringLen -= adv
	e.base = ack
}

// Stats returns a snapshot of the endpoint's counters and gauges.
func (e *Endpoint) Stats() Stats {
	s := e.stats
	s.InFlight = e.ringLen
	s.QueueDepth = len(e.queue)
	s.Deframe = e.deframer.Stats
	return s
}
