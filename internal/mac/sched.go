package mac

// QoS classes. Every virtual channel is assigned one class; the
// scheduler shares superframe budget across VCs in proportion to the
// class weights, so a high-priority VC gets more service slots per cycle
// but a low-priority VC is never starved (weighted round-robin, not
// strict priority).
const (
	// NumClasses is how many priority classes exist: 0 is highest.
	NumClasses = 3
)

// classWeights maps a QoS class to its scheduler weight: the number of
// service slots the class contributes per WRR cycle. Class 0 (highest)
// gets 4x the slots of class 2 (lowest).
var classWeights = [NumClasses]int{4, 2, 1}

// ClassWeight returns the scheduler weight of a QoS class (0 for an
// out-of-range class, which Config.Validate rejects anyway).
func ClassWeight(class uint8) int {
	if int(class) >= NumClasses {
		return 0
	}
	return classWeights[class]
}

// buildServiceOrder precomputes the deterministic weighted round-robin
// service sequence over the VCs given their per-VC classes. The sequence
// interleaves VCs round by round: round r includes every VC whose weight
// exceeds r, so for classes [0,1,2] (weights 4,2,1) the cycle is
// 0 1 2 0 1 0 0 — VC 0 is serviced four times per cycle, VC 2 once.
// One fresh frame is emitted per service slot, so budget is shared in
// frame-count proportion to the weights and no VC can starve.
func buildServiceOrder(classes []uint8) []int {
	maxW := 0
	for _, c := range classes {
		if w := ClassWeight(c); w > maxW {
			maxW = w
		}
	}
	var seq []int
	for r := 0; r < maxW; r++ {
		for vc, c := range classes {
			if r < ClassWeight(c) {
				seq = append(seq, vc)
			}
		}
	}
	if len(seq) == 0 {
		seq = []int{0}
	}
	return seq
}
