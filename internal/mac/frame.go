// Package mac is the protocol-agnostic link-adaptation layer between the
// bit-true PHY (internal/phy) and the network simulator
// (internal/netsim). It has three jobs, mirroring the paper's claim that
// Mosaic drops into existing servers and switches unchanged:
//
//   - Framing: client packets are carried in CRC-protected MAC frames
//     packed back-to-back into the superframe payload, with idle fill up
//     to the payload budget. The deframer is a resynchronizing scanner —
//     a corrupted or missing PHY frame splices the byte stream, and the
//     scanner walks forward one byte at a time until the next valid
//     header+CRC, so one bad frame never poisons the rest of the
//     superframe.
//
//   - Link-level retry (LLR): a go-back-N window with 16-bit sequence
//     numbers, a bounded replay ring, and cumulative acks piggybacked on
//     every data frame. Residual post-FEC corruption (the ~1e-12 tail
//     the PHY cannot fix) is repaired here, invisibly to the client.
//
//   - Capacity renegotiation: Bridge subscribes to phy.Monitor
//     transition hooks and republishes the link's degraded capacity into
//     netsim.FlowSim when sparing consumes lanes, so the fluid flow
//     simulator sees graceful width degradation instead of hand-wired
//     capacity edits.
//
// Everything is deterministic: framing and retry state advance only at
// superframe boundaries, and the PHY guarantees worker-count-independent
// corruption, so a fixed seed reproduces byte-identical event logs.
package mac

import (
	"encoding/binary"
	"hash/crc32"
)

// Wire format, all integers big-endian. Two header versions share the
// magic and trailer; the version rides in the flags byte:
//
//	v1: magic0 magic1 | flags      | seq u16 | ack u16 | length u16 | payload | crc32 u32
//	v2: magic0 magic1 | flags+V2 | vc u8 | seq u16 | ack u16 | length u16 | payload | crc32 u32
//
// v1 is the legacy single-virtual-channel format; v2 inserts one VC byte
// after the flags so each virtual channel carries its own sequence and
// ack space. The CRC (IEEE 802.3 polynomial) covers header and payload.
// Idle fill between frames is IdleByte, chosen to differ from magic0 so
// the deframer skips it in one compare per byte.
const (
	Magic0   = 0xD5
	Magic1   = 0x4D
	IdleByte = 0x00

	// HeaderLen is the v1 header: magic(2) + flags(1) + seq(2) + ack(2) + length(2).
	HeaderLen = 9
	// HeaderLenV2 adds the VC byte between flags and seq.
	HeaderLenV2 = 10
	// Overhead is the full v1 per-frame cost: header plus CRC32 trailer.
	Overhead = HeaderLen + 4
	// OverheadV2 is the full v2 per-frame cost.
	OverheadV2 = HeaderLenV2 + 4
	// MinFrameLen is the shortest possible frame (empty v1 payload).
	MinFrameLen = Overhead

	// MaxVCs is the number of virtual channels the v2 header can name
	// (the VC field is one byte).
	MaxVCs = 256

	// SackBytes is the selective-ack bitmap length carried as the
	// payload of a FlagSack pure-ack frame: bit k covers sequence
	// Ack+1+k, so the bitmap spans the 64 frames after the cumulative
	// ack.
	SackBytes = 8

	// DefaultMaxPayload bounds the payload length the deframer will
	// accept; longer length fields are header-rejected (a corrupted
	// length would otherwise swallow the rest of the buffer).
	DefaultMaxPayload = 2048
)

// Frame flags.
const (
	FlagData byte = 1 << 0 // frame carries a client payload at Seq
	FlagAck  byte = 1 << 1 // Ack field holds the next expected rx seq
	FlagSack byte = 1 << 2 // payload is a SackBytes selective-ack bitmap (non-data frames only)
	FlagV2   byte = 1 << 3 // header carries a VC byte (frame header v2)
)

// Frame is one decoded MAC frame. Payload aliases the deframed buffer
// and is only valid until the next Deframe call.
type Frame struct {
	Flags byte
	VC    byte // virtual channel (0 for v1 frames)
	Seq   uint16
	Ack   uint16
	// Payload is a view into the input buffer, not a copy.
	Payload []byte
}

// Version returns the frame header version (1 or 2) encoded in flags.
func (f Frame) Version() int {
	if f.Flags&FlagV2 != 0 {
		return 2
	}
	return 1
}

// AppendFrame appends one encoded v1 MAC frame to dst and returns the
// extended slice. It never allocates when dst has capacity. The payload
// must be shorter than 65536 bytes (the length field is u16).
func AppendFrame(dst []byte, flags byte, seq, ack uint16, payload []byte) []byte {
	start := len(dst)
	dst = append(dst, Magic0, Magic1, flags&^FlagV2,
		byte(seq>>8), byte(seq),
		byte(ack>>8), byte(ack),
		byte(len(payload)>>8), byte(len(payload)))
	dst = append(dst, payload...)
	crc := crc32.ChecksumIEEE(dst[start:])
	return append(dst, byte(crc>>24), byte(crc>>16), byte(crc>>8), byte(crc))
}

// AppendFrameVC appends one encoded v2 MAC frame (FlagV2 is forced on)
// carrying the given virtual channel. Like AppendFrame it never
// allocates when dst has capacity.
func AppendFrameVC(dst []byte, flags byte, vc byte, seq, ack uint16, payload []byte) []byte {
	start := len(dst)
	dst = append(dst, Magic0, Magic1, flags|FlagV2, vc,
		byte(seq>>8), byte(seq),
		byte(ack>>8), byte(ack),
		byte(len(payload)>>8), byte(len(payload)))
	dst = append(dst, payload...)
	crc := crc32.ChecksumIEEE(dst[start:])
	return append(dst, byte(crc>>24), byte(crc>>16), byte(crc>>8), byte(crc))
}

// DeframeStats counts what a Deframer saw. Frames is valid decodes;
// the reject counters classify every byte that was not part of one.
type DeframeStats struct {
	Frames        uint64 // valid frames emitted
	PayloadBytes  uint64 // payload bytes inside valid frames
	IdleBytes     uint64 // idle fill skipped between frames
	SkippedBytes  uint64 // non-idle bytes skipped while resyncing
	HeaderRejects uint64 // magic matched but the length field was implausible
	CRCRejects    uint64 // header parsed but the CRC32 check failed
	Truncated     uint64 // header promised more bytes than the buffer holds
}

// Deframer scans a contiguous byte stream for MAC frames. It is
// restartable: corruption anywhere (bit flips, a missing PHY frame
// splicing two superframe fragments together) makes it advance one byte
// and rescan, so it deterministically reacquires the next intact frame.
// The zero value is ready to use.
type Deframer struct {
	// MaxPayload bounds accepted payload lengths (0 = DefaultMaxPayload).
	MaxPayload int
	Stats      DeframeStats
}

// Deframe scans buf and calls emit for every valid frame, in order.
// Frame payloads alias buf. The scan is single-pass in the common case
// (each valid frame is consumed whole) and resynchronizes byte-by-byte
// after any reject, so it never panics and never emits a frame whose
// CRC did not check out. Both header versions are accepted: the FlagV2
// bit in the flags byte selects the v2 layout with its VC byte.
func (d *Deframer) Deframe(buf []byte, emit func(Frame)) {
	maxPayload := d.MaxPayload
	if maxPayload <= 0 {
		maxPayload = DefaultMaxPayload
	}
	i := 0
	for i+MinFrameLen <= len(buf) {
		if buf[i] != Magic0 {
			if buf[i] == IdleByte {
				d.Stats.IdleBytes++
			} else {
				d.Stats.SkippedBytes++
			}
			i++
			continue
		}
		if buf[i+1] != Magic1 {
			d.Stats.SkippedBytes++
			i++
			continue
		}
		flags := buf[i+2]
		hdr := HeaderLen
		var vc byte
		if flags&FlagV2 != 0 {
			hdr = HeaderLenV2
			if i+hdr+4 > len(buf) {
				// The longer v2 header itself runs past the buffer.
				d.Stats.Truncated++
				i++
				continue
			}
			vc = buf[i+3]
		}
		n := int(binary.BigEndian.Uint16(buf[i+hdr-2 : i+hdr]))
		if n > maxPayload {
			d.Stats.HeaderRejects++
			i++
			continue
		}
		end := i + hdr + n + 4
		if end > len(buf) {
			// Could be a frame cut off by the superframe boundary, or
			// corruption that inflated the length; advance and rescan so
			// a frame hiding inside the "payload" is still found.
			d.Stats.Truncated++
			i++
			continue
		}
		want := binary.BigEndian.Uint32(buf[end-4 : end])
		if crc32.ChecksumIEEE(buf[i:end-4]) != want {
			d.Stats.CRCRejects++
			i++
			continue
		}
		d.Stats.Frames++
		d.Stats.PayloadBytes += uint64(n)
		emit(Frame{
			Flags:   flags,
			VC:      vc,
			Seq:     binary.BigEndian.Uint16(buf[i+hdr-6 : i+hdr-4]),
			Ack:     binary.BigEndian.Uint16(buf[i+hdr-4 : i+hdr-2]),
			Payload: buf[i+hdr : i+hdr+n],
		})
		i = end
	}
	for ; i < len(buf); i++ {
		if buf[i] == IdleByte {
			d.Stats.IdleBytes++
		} else {
			d.Stats.SkippedBytes++
		}
	}
}
