// Package mosaic is a from-scratch reproduction of "Mosaic: Breaking the
// Optics versus Copper Trade-off with a Wide-and-Slow Architecture and
// MicroLEDs" (SIGCOMM 2025): device and fiber physics, the wide-and-slow
// PHY (gearbox, framing, FEC, sparing), power and reliability models,
// baselines (copper DAC, laser optics), and a datacenter-scale simulator.
//
// The public entry point is internal/core (link design and analysis); the
// experiment suite lives in internal/experiments and is driven by
// cmd/mosaicbench and the benchmarks in bench_test.go. See DESIGN.md for
// the system inventory and EXPERIMENTS.md for paper-vs-measured results.
package mosaic
